//! Sampled time series and the statistics the paper's figures need.

use std::fmt;

use crate::SimTime;

/// A time-ordered sequence of `(time, value)` samples for one signal.
///
/// This is the output format of every experiment: Fig. 6(b) is four of these.
///
/// # Example
///
/// ```
/// use evm_sim::{SimTime, TimeSeries};
/// let mut s = TimeSeries::new("LTS.LiquidPct");
/// s.push(SimTime::ZERO, 50.0);
/// s.push(SimTime::from_secs(1), 49.5);
/// assert_eq!(s.last_value(), Some(49.5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    name: String,
    samples: Vec<(SimTime, f64)>,
}

/// Summary statistics of a [`TimeSeries`] (or a window of one).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesStats {
    /// Number of samples.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl TimeSeries {
    /// Creates an empty series with the given signal name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// The signal name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Reserves capacity for at least `additional` more samples — lets a
    /// long-running engine pre-size its result buffers so steady-state
    /// sampling never reallocates.
    pub fn reserve(&mut self, additional: usize) {
        self.samples.reserve(additional);
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `at` is earlier than the previous sample.
    pub fn push(&mut self, at: SimTime, value: f64) {
        if let Some(&(last, _)) = self.samples.last() {
            debug_assert!(at >= last, "samples must be appended in time order");
        }
        self.samples.push((at, value));
    }

    /// All samples in time order.
    #[must_use]
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the series has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The most recent value, if any.
    #[must_use]
    pub fn last_value(&self) -> Option<f64> {
        self.samples.last().map(|&(_, v)| v)
    }

    /// The value in effect at time `at` (sample-and-hold semantics):
    /// the latest sample with timestamp `<= at`.
    #[must_use]
    pub fn value_at(&self, at: SimTime) -> Option<f64> {
        match self.samples.partition_point(|&(t, _)| t <= at) {
            0 => None,
            i => Some(self.samples[i - 1].1),
        }
    }

    /// Sub-series restricted to `lo <= t < hi`.
    #[must_use]
    pub fn window(&self, lo: SimTime, hi: SimTime) -> TimeSeries {
        TimeSeries {
            name: self.name.clone(),
            samples: self
                .samples
                .iter()
                .copied()
                .filter(|&(t, _)| t >= lo && t < hi)
                .collect(),
        }
    }

    /// Summary statistics, or `None` for an empty series.
    #[must_use]
    pub fn stats(&self) -> Option<SeriesStats> {
        if self.samples.is_empty() {
            return None;
        }
        let n = self.samples.len() as f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &(_, v) in &self.samples {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        let mean = sum / n;
        let var = self
            .samples
            .iter()
            .map(|&(_, v)| (v - mean).powi(2))
            .sum::<f64>()
            / n;
        Some(SeriesStats {
            count: self.samples.len(),
            min,
            max,
            mean,
            std_dev: var.sqrt(),
        })
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of the values, by linear interpolation.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.samples.is_empty() {
            return None;
        }
        let mut vals: Vec<f64> = self.samples.iter().map(|&(_, v)| v).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("NaN in series"));
        let pos = q * (vals.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(vals[lo] * (1.0 - frac) + vals[hi] * frac)
    }

    /// Integral of squared error against a reference value over the sampled
    /// span using left-rectangle integration (the classic ISE control-cost
    /// metric, used by experiment E14).
    #[must_use]
    pub fn integral_squared_error(&self, reference: f64) -> f64 {
        let mut acc = 0.0;
        for pair in self.samples.windows(2) {
            let (t0, v0) = pair[0];
            let (t1, _) = pair[1];
            let dt = (t1 - t0).as_secs_f64();
            acc += (v0 - reference).powi(2) * dt;
        }
        acc
    }

    /// First time at (or after) which the signal stays within
    /// `reference ± tol` for the remainder of the series — the settling
    /// instant. `None` if it never settles.
    #[must_use]
    pub fn settling_time(&self, reference: f64, tol: f64) -> Option<SimTime> {
        let mut candidate: Option<SimTime> = None;
        for &(t, v) in &self.samples {
            if (v - reference).abs() <= tol {
                candidate.get_or_insert(t);
            } else {
                candidate = None;
            }
        }
        candidate
    }

    /// Renders a CSV fragment (`time_s,value` lines, no header).
    #[must_use]
    pub fn to_csv(&self) -> String {
        use fmt::Write;
        let mut s = String::new();
        for &(t, v) in &self.samples {
            let _ = writeln!(s, "{:.3},{:.6}", t.as_secs_f64(), v);
        }
        s
    }
}

impl fmt::Display for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} samples)", self.name, self.samples.len())
    }
}

/// Writes several series sharing a time base as one CSV table
/// (`time_s,name1,name2,...`). Series are sampled-and-held onto the time
/// base of the first series.
///
/// # Panics
///
/// Panics if `series` is empty.
#[must_use]
pub fn merged_csv(series: &[&TimeSeries]) -> String {
    assert!(!series.is_empty(), "need at least one series");
    let mut out = String::from("time_s");
    for s in series {
        out.push(',');
        out.push_str(s.name());
    }
    out.push('\n');
    for &(t, v0) in series[0].samples() {
        use fmt::Write;
        let _ = write!(out, "{:.3},{v0:.6}", t.as_secs_f64());
        for s in &series[1..] {
            let v = s.value_at(t).unwrap_or(f64::NAN);
            let _ = write!(out, ",{v:.6}");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> TimeSeries {
        let mut s = TimeSeries::new("ramp");
        for i in 0..=10 {
            s.push(SimTime::from_secs(i), i as f64);
        }
        s
    }

    #[test]
    fn stats_of_ramp() {
        let st = ramp().stats().unwrap();
        assert_eq!(st.count, 11);
        assert_eq!(st.min, 0.0);
        assert_eq!(st.max, 10.0);
        assert!((st.mean - 5.0).abs() < 1e-12);
    }

    #[test]
    fn value_at_sample_and_hold() {
        let s = ramp();
        assert_eq!(s.value_at(SimTime::from_millis(500)), Some(0.0));
        assert_eq!(s.value_at(SimTime::from_secs(3)), Some(3.0));
        assert_eq!(s.value_at(SimTime::from_millis(3_500)), Some(3.0));
        let mut empty = TimeSeries::new("e");
        assert_eq!(empty.value_at(SimTime::ZERO), None);
        empty.push(SimTime::from_secs(5), 1.0);
        assert_eq!(empty.value_at(SimTime::from_secs(4)), None);
    }

    #[test]
    fn window_bounds() {
        let w = ramp().window(SimTime::from_secs(2), SimTime::from_secs(5));
        assert_eq!(w.len(), 3); // t = 2, 3, 4
        assert_eq!(w.samples()[0].1, 2.0);
    }

    #[test]
    fn quantiles() {
        let s = ramp();
        assert_eq!(s.quantile(0.0), Some(0.0));
        assert_eq!(s.quantile(1.0), Some(10.0));
        assert_eq!(s.quantile(0.5), Some(5.0));
    }

    #[test]
    fn ise_of_constant_error() {
        let mut s = TimeSeries::new("c");
        s.push(SimTime::ZERO, 2.0);
        s.push(SimTime::from_secs(10), 2.0);
        // (2-0)^2 * 10 s = 40
        assert!((s.integral_squared_error(0.0) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn settling() {
        let mut s = TimeSeries::new("sig");
        s.push(SimTime::from_secs(0), 10.0);
        s.push(SimTime::from_secs(1), 5.0);
        s.push(SimTime::from_secs(2), 1.0);
        s.push(SimTime::from_secs(3), 0.5);
        s.push(SimTime::from_secs(4), 0.4);
        assert_eq!(s.settling_time(0.0, 1.0), Some(SimTime::from_secs(2)));
        assert_eq!(s.settling_time(0.0, 0.1), None);
    }

    #[test]
    fn merged_csv_layout() {
        let a = ramp();
        let mut b = TimeSeries::new("b");
        b.push(SimTime::ZERO, 100.0);
        let csv = merged_csv(&[&a, &b]);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time_s,ramp,b"));
        assert_eq!(csv.lines().count(), 12);
        assert!(csv
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("0.000,0.000000,100.000000"));
    }
}
