//! Future-event list.
//!
//! A thin wrapper over a binary heap keyed by `(time, sequence)`. The
//! monotonically increasing sequence number guarantees FIFO order among
//! events scheduled for the same instant, which in turn makes the whole
//! simulation deterministic regardless of heap internals.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A deterministic future-event list.
///
/// Events of type `E` are scheduled at absolute [`SimTime`]s and popped in
/// non-decreasing time order; ties are broken by insertion order (FIFO).
///
/// # Example
///
/// ```
/// use evm_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(5), "b");
/// q.push(SimTime::from_millis(1), "a");
/// q.push(SimTime::from_millis(5), "c");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let entry = Entry {
            at,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.heap.push(Reverse(entry));
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// The `(time, sequence)` key of the earliest pending event, if any.
    ///
    /// Together with [`EventQueue::skip_seq`] this lets a caller maintain
    /// a *virtual* event outside the heap and still order it exactly as
    /// if it had been pushed: compare `(at, seq)` tuples.
    #[must_use]
    pub fn peek_entry(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|Reverse(e)| (e.at, e.seq))
    }

    /// Consumes one sequence number without pushing an event, returning
    /// the number consumed — the seq a [`EventQueue::push`] at this point
    /// would have been assigned. Lets a caller keep a recurring event
    /// *virtual* (outside the heap) while preserving the exact tie-break
    /// order a pushed event would have had.
    pub fn skip_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Consumes `n` sequence numbers (n ≥ 1) without pushing events,
    /// returning the **last** one consumed.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn skip_seqs(&mut self, n: u64) -> u64 {
        assert!(n >= 1, "must skip at least one sequence number");
        self.seq += n;
        self.seq - 1
    }

    /// Reserves heap capacity for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), 3);
        q.push(SimTime::from_micros(10), 1);
        q.push(SimTime::from_micros(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_micros(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_micros(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_among_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(1), ());
        q.push(SimTime::from_millis(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        q.clear();
        assert!(q.is_empty());
    }

    /// Popping always yields a non-decreasing time sequence, and same-time
    /// events preserve insertion order — checked over many random insertion
    /// patterns drawn from a seeded generator.
    #[test]
    fn random_insertions_pop_time_then_fifo() {
        for seed in 0..64u64 {
            let mut rng = SimRng::seed_from(seed);
            let n = 1 + rng.index(199);
            let times: Vec<u64> = (0..n).map(|_| rng.index(1_000) as u64).collect();
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_micros(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, i)) = q.pop() {
                if let Some((lt, li)) = last {
                    assert!(t >= lt, "seed {seed}: time went backwards");
                    if t == lt {
                        assert!(i > li, "seed {seed}: FIFO violated: {li} then {i}");
                    }
                }
                last = Some((t, i));
            }
        }
    }
}
