//! The work-stealing sweep executor.
//!
//! Std-only (threads + channels + one atomic): workers pull the next
//! unclaimed job index from a shared counter — a self-balancing queue
//! over a static work-list, which is all the stealing a sweep needs since
//! cells are independent and the list is fixed up front. Results are
//! reassembled **by job index**, so the output order (and therefore
//! everything aggregated from it) is independent of scheduling, core
//! count and completion order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

use evm_core::runtime::{Engine, TopologyError};
use evm_core::RunResult;

use crate::grid::SweepCell;

/// The machine's available parallelism (≥ 1).
#[must_use]
pub fn available_threads() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f(index, &job)` for every job on a pool of `threads` workers and
/// returns the results **in job order**, regardless of which worker ran
/// what when. `threads` is clamped to `[1, jobs.len()]`; with one thread
/// the jobs run inline on the caller in index order.
///
/// # Panics
///
/// Propagates a panic from `f` after the scope joins its workers.
pub fn run_indexed<J, R, F>(jobs: &[J], threads: usize, f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    let threads = threads.max(1).min(jobs.len().max(1));
    if threads <= 1 {
        return jobs.iter().enumerate().map(|(i, j)| f(i, j)).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut out: Vec<Option<R>> = Vec::with_capacity(jobs.len());
    out.resize_with(jobs.len(), || None);
    thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                // A closed channel means the collector is gone (a sibling
                // panicked); stop pulling work.
                if tx.send((i, f(i, &jobs[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            out[i] = Some(r);
        }
    });
    out.into_iter()
        .map(|r| r.expect("every claimed job reports a result"))
        .collect()
}

/// Runs every cell's engine on the pool; results come back in cell order.
///
/// This is the sweep fast path: one `Engine` per cell, no shared state
/// between cells, per-cell seeds fixed at expansion time — so the result
/// vector is byte-identical across thread counts.
#[must_use]
pub fn run_cells(cells: &[SweepCell], threads: usize) -> Vec<RunResult> {
    run_indexed(cells, threads, |_, cell| {
        Engine::new(cell.scenario.clone()).run()
    })
}

/// Like [`run_cells`], but a cell with a malformed topology reports its
/// [`TopologyError`] in place instead of panicking the worker — one bad
/// cell (e.g. a hand-built spec in the template) fails alone and the
/// rest of the batch completes. `SweepGrid::expand` already rejects
/// malformed specs up front, so this is the belt for cells built or
/// mutated outside the grid DSL.
#[must_use]
pub fn run_cells_checked(
    cells: &[SweepCell],
    threads: usize,
) -> Vec<Result<RunResult, TopologyError>> {
    run_indexed(cells, threads, |_, cell| {
        Engine::try_new(cell.scenario.clone()).map(Engine::run)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use std::time::Duration;

    #[test]
    fn results_come_back_in_job_order() {
        // Stagger job durations so late jobs finish first under
        // parallelism; order must still be positional.
        let jobs: Vec<u64> = (0..16).rev().collect();
        let out = run_indexed(&jobs, 4, |i, &ms| {
            thread::sleep(Duration::from_millis(ms));
            i * 10
        });
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn one_thread_and_many_threads_agree() {
        let jobs: Vec<u64> = (0..64).collect();
        let serial = run_indexed(&jobs, 1, |i, &x| (i as u64) * 1000 + x * x);
        let parallel = run_indexed(&jobs, 8, |i, &x| (i as u64) * 1000 + x * x);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let ran = Mutex::new(vec![0usize; 100]);
        let jobs: Vec<usize> = (0..100).collect();
        let _ = run_indexed(&jobs, 7, |i, _| {
            ran.lock().unwrap()[i] += 1;
        });
        assert!(ran.into_inner().unwrap().iter().all(|&n| n == 1));
    }

    #[test]
    fn degenerate_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_indexed(&empty, 4, |_, &x| x).is_empty());
        // More threads than jobs is fine; so is zero requested threads.
        assert_eq!(run_indexed(&[5u32], 64, |_, &x| x + 1), vec![6]);
        assert_eq!(run_indexed(&[5u32, 6], 0, |_, &x| x + 1), vec![6, 7]);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    /// One malformed cell reports its typed error in place; the rest of
    /// the batch still runs (the failure mode `run_cells` would escalate
    /// into a worker panic).
    #[test]
    fn checked_run_reports_bad_cells_in_place() {
        use evm_core::runtime::{Role, ScenarioBuilder};
        let template = ScenarioBuilder::minimal()
            .duration(evm_sim::SimDuration::from_secs(2))
            .build();
        let mut cells = crate::grid::SweepGrid::new(template)
            .over_loss(&[0.0, 0.1])
            .expand();
        cells[1]
            .scenario
            .topology
            .nodes
            .retain(|n| !matches!(n.role, Role::Controller(_)));
        let out = run_cells_checked(&cells, 2);
        assert!(out[0].is_ok());
        assert_eq!(
            out[1].as_ref().unwrap_err(),
            &TopologyError::MissingController(0)
        );
    }
}
