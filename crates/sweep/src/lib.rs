//! Batch sweep runner: many-seed, many-configuration evidence.
//!
//! The engine is deterministic by construction and runs ~10⁴× faster than
//! real time, so the robustness claims of the paper's Figs. 4–6 — made
//! there from single trajectories of one seven-node testbed — can be
//! re-established as *statistics* over a scenario grid. This crate turns
//! the runtime into that statistics-producing system in three layers:
//!
//! * [`grid`] — the [`SweepGrid`] DSL: axes over `ScenarioBuilder` knobs
//!   (extra loss, Gilbert–Elliott burstiness, detection parameters, star
//!   role counts, seed replicates) expanded into a work-list of
//!   [`SweepCell`]s with stable per-cell seeds
//!   ([`evm_sim::derive_seed`]),
//! * [`executor`] — a work-stealing thread pool over std threads and
//!   channels ([`run_cells`] / [`run_indexed`]): each cell's `Engine` runs
//!   on its own core, results come back in cell order regardless of which
//!   worker finished first,
//! * [`report`] — the deterministic aggregator: per-cell [`CellStats`]
//!   folded into a [`SweepReport`] (mean/p50/p99 failover latency,
//!   loss-vs-regulation curves, deadline hit ratios, radio energy),
//!   rendered as byte-stable CSV and markdown.
//!
//! The contract pinned down by the cross-thread reproducibility suite:
//! for the same grid, a 1-thread and an N-thread run produce **identical
//! bytes** — every per-cell `RunResult` compares equal and the rendered
//! reports match exactly.
//!
//! ```
//! use evm_sweep::{run_cells, SweepGrid, SweepReport};
//! use evm_core::runtime::Scenario;
//! use evm_sim::SimDuration;
//!
//! let mut template = Scenario::baseline();
//! template.duration = SimDuration::from_secs(5);
//! let cells = SweepGrid::new(template)
//!     .over_loss(&[0.0, 0.2])
//!     .seeds_per_cell(2)
//!     .expand();
//! assert_eq!(cells.len(), 4);
//! let results = run_cells(&cells, 2);
//! let report = SweepReport::build(&cells, &results);
//! assert_eq!(report.rows.len(), 2); // one row per config, pooled over seeds
//! ```

#![forbid(unsafe_code)]

pub mod executor;
pub mod grid;
pub mod report;

pub use executor::{available_threads, run_cells, run_cells_checked, run_indexed};
pub use grid::{BurstSpec, CellConfig, StarShape, SweepCell, SweepGrid};
pub use report::{CellStats, SweepReport, SweepRow, VcCellStats, VcRow};
