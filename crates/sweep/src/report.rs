//! Deterministic sweep aggregation and report rendering.
//!
//! [`SweepReport::build`] consumes the cell list and the result vector
//! **in cell order** (the executor's contract) and reduces them twice:
//! per-cell [`CellStats`] for the raw dump, and per-config [`SweepRow`]s
//! pooling seed replicates (mean/p50/p99 failover latency, pooled
//! deadline hit ratio and end-to-end quantiles, mean control cost — the
//! loss-vs-regulation curve — and mean radio current). Every reduction
//! iterates in cell order with fixed-precision formatting, so the
//! rendered CSV and markdown are byte-identical across thread counts.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use evm_core::{RunAggregate, RunResult};
use evm_sim::SimTime;

use crate::grid::{CellConfig, SweepCell};

/// Derived metrics of one cell's run.
#[derive(Debug, Clone, PartialEq)]
pub struct CellStats {
    /// Time the fault was confirmed (deviation or heartbeat timeout), s.
    pub detect_s: Option<f64>,
    /// Time the head committed the failover, s.
    pub commit_s: Option<f64>,
    /// Detection-to-commit latency, s.
    pub failover_s: Option<f64>,
    /// The run fell back to the fail-safe response.
    pub fail_safe: bool,
    /// Deadline hit ratio.
    pub hit_ratio: f64,
    /// Actuations delivered.
    pub actuations: usize,
    /// Deadline misses.
    pub deadline_misses: usize,
    /// Median end-to-end latency, ms.
    pub e2e_p50_ms: f64,
    /// 99th-percentile end-to-end latency, ms.
    pub e2e_p99_ms: f64,
    /// Integral squared error of the focus PV vs its setpoint from the
    /// fault instant (or t = 0) to the horizon — the regulation cost.
    pub ise: f64,
    /// Mean radio current across nodes, mA.
    pub mean_current_ma: f64,
    /// Deployed node count (relays included) — the topology axis's
    /// scale column.
    pub nodes: usize,
    /// Configuration epochs committed during the run (0 = static).
    pub epochs: u64,
    /// Detect → reroute → first-delivered-frame latency of the first
    /// runtime reconfiguration, in RT-Link cycles (NaN when none).
    pub reroute_cycles: f64,
    /// Per-VC stats, indexed by `VcId`: `(loop name, actuations,
    /// deadline hit ratio, regulation cost)`.
    pub per_vc: Vec<VcCellStats>,
}

/// One Virtual Component's share of a cell's run.
#[derive(Debug, Clone, PartialEq)]
pub struct VcCellStats {
    /// The loop the VC hosts (e.g. `"LC-LTS"`).
    pub loop_name: String,
    /// Actuations this VC delivered.
    pub actuations: usize,
    /// This VC's deadline hit ratio.
    pub hit_ratio: f64,
    /// Integral squared error of this VC's PV vs its setpoint over the
    /// cell's scoring window.
    pub ise: f64,
}

impl CellStats {
    /// Extracts the stats of one cell's run.
    #[must_use]
    pub fn from_run(cell: &SweepCell, r: &RunResult) -> Self {
        let s = &cell.scenario;
        let detect = [
            r.event_time("confirmed deviation"),
            r.event_time("heartbeat timeout"),
        ]
        .into_iter()
        .flatten()
        .min()
        .map(SimTime::as_secs_f64);
        let commit = r
            .event_time("head commits failover")
            .map(|t| t.as_secs_f64());
        let failover = match (detect, commit) {
            (Some(d), Some(c)) => Some(c - d),
            _ => None,
        };
        let from = s.fault.map_or(SimTime::ZERO, |(at, _)| at);
        let ise = r.series.get(&s.focus_loop.pv_tag).map_or(f64::NAN, |ts| {
            ts.window(from, SimTime::ZERO + s.duration)
                .integral_squared_error(s.focus_loop.setpoint)
        });
        let q = |p: f64| {
            r.e2e_quantile(p)
                .map_or(f64::NAN, |d| d.as_secs_f64() * 1e3)
        };
        let per_vc = r
            .vc_stats
            .iter()
            .enumerate()
            .map(|(k, vs)| {
                let spec = s.vc_loop(k as evm_core::VcId);
                let vc_ise = r.series.get(&spec.pv_tag).map_or(f64::NAN, |ts| {
                    ts.window(from, SimTime::ZERO + s.duration)
                        .integral_squared_error(spec.setpoint)
                });
                VcCellStats {
                    loop_name: vs.loop_name.clone(),
                    actuations: vs.actuations,
                    hit_ratio: vs.deadline_hit_ratio(),
                    ise: vc_ise,
                }
            })
            .collect();
        CellStats {
            detect_s: detect,
            commit_s: commit,
            failover_s: failover,
            fail_safe: r.event_time("fail-safe").is_some(),
            hit_ratio: r.deadline_hit_ratio(),
            actuations: r.actuations,
            deadline_misses: r.deadline_misses,
            e2e_p50_ms: q(0.5),
            e2e_p99_ms: q(0.99),
            ise,
            mean_current_ma: r.mean_node_current_ma().unwrap_or(f64::NAN),
            nodes: r.meta.nodes,
            epochs: r.epochs,
            reroute_cycles: r.reroute_latency.map_or(f64::NAN, |d| {
                d.as_secs_f64() / s.rtlink.cycle_duration().as_secs_f64()
            }),
            per_vc,
        }
    }
}

/// One config point, pooled over its seed replicates.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// The config-point key ([`CellConfig::key`]).
    pub key: String,
    /// Axis values (of the first replicate; `rep`/`seed` vary per cell).
    pub config: CellConfig,
    /// Replicates pooled into this row.
    pub runs: usize,
    /// Replicates that confirmed a fault.
    pub detected_runs: usize,
    /// Replicates that fell back to fail-safe.
    pub fail_safe_runs: usize,
    /// Mean detection time, s.
    pub detect_mean_s: f64,
    /// Mean detection-to-commit latency, s.
    pub failover_mean_s: f64,
    /// Median detection-to-commit latency, s.
    pub failover_p50_s: f64,
    /// 99th-percentile detection-to-commit latency, s.
    pub failover_p99_s: f64,
    /// Pooled deadline hit ratio.
    pub hit_ratio: f64,
    /// Pooled median end-to-end latency, ms.
    pub e2e_p50_ms: f64,
    /// Pooled 99th-percentile end-to-end latency, ms.
    pub e2e_p99_ms: f64,
    /// Mean regulation cost (the loss-vs-regulation curve's ordinate).
    pub ise_mean: f64,
    /// Mean radio current across replicates, mA.
    pub mean_current_ma: f64,
    /// Mean configuration epochs committed per run (0 = static rows).
    pub epochs_mean: f64,
    /// Mean reroute latency over the replicates that rerouted, in
    /// RT-Link cycles (NaN when none did).
    pub reroute_cycles_mean: f64,
}

/// One (config point, Virtual Component) row: a config point's seed
/// replicates pooled per hosted VC — the loops-hosted-vs-QoS view the
/// multi-VC scaling story reads off.
#[derive(Debug, Clone, PartialEq)]
pub struct VcRow {
    /// The config-point key ([`CellConfig::key`]).
    pub key: String,
    /// The Virtual Component within the config point.
    pub vc: evm_core::VcId,
    /// The loop this VC hosts.
    pub loop_name: String,
    /// Replicates pooled into this row.
    pub runs: usize,
    /// Mean actuations this VC delivered per run.
    pub actuations_mean: f64,
    /// Pooled deadline hit ratio of this VC.
    pub hit_ratio: f64,
    /// Mean regulation cost of this VC's loop.
    pub ise_mean: f64,
}

/// The aggregated outcome of one grid run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Per-cell stats, in cell order.
    pub cells: Vec<(CellConfig, CellStats)>,
    /// Per-config rows, in first-appearance (grid) order.
    pub rows: Vec<SweepRow>,
    /// Per-(config, VC) rows, in grid order then `VcId` order.
    pub vc_rows: Vec<VcRow>,
}

/// Mean of a slice (NaN when empty); summation in slice order.
fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Nearest-rank quantile of an unsorted sample (NaN when empty) — the
/// same convention as the latency quantiles in `evm-core`, so the
/// failover and e2e columns of a [`SweepRow`] are comparable.
fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let idx = ((v.len() - 1) as f64 * q).round() as usize;
    v[idx]
}

/// Fixed-precision cell for possibly-NaN values (renders `nan`).
fn f3(v: f64) -> String {
    if v.is_nan() {
        "nan".to_string()
    } else {
        format!("{v:.3}")
    }
}

impl SweepReport {
    /// Builds the report from the work-list and its results, which must be
    /// aligned by index (the executor returns them that way).
    ///
    /// Aggregation is order-independent by construction: inputs arrive in
    /// cell order whatever the execution interleaving was, and replicate
    /// pools reduce with [`RunAggregate`] plus sorted-sample quantiles.
    ///
    /// # Panics
    ///
    /// Panics if `cells` and `results` have different lengths.
    #[must_use]
    pub fn build(cells: &[SweepCell], results: &[RunResult]) -> Self {
        assert_eq!(
            cells.len(),
            results.len(),
            "one result per cell, in cell order"
        );
        let cell_stats: Vec<(CellConfig, CellStats)> = cells
            .iter()
            .zip(results)
            .map(|(c, r)| (c.config.clone(), CellStats::from_run(c, r)))
            .collect();

        // Group replicates by config key, preserving grid order.
        let mut order: Vec<String> = Vec::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (i, (config, _)) in cell_stats.iter().enumerate() {
            let key = config.key();
            match order.iter().position(|k| *k == key) {
                Some(g) => groups[g].push(i),
                None => {
                    order.push(key);
                    groups.push(vec![i]);
                }
            }
        }

        // Per-(config, VC) rows: pool each VC's share of the replicates.
        let mut vc_rows: Vec<VcRow> = Vec::new();
        for (key, members) in order.iter().zip(&groups) {
            let n_vcs = members
                .iter()
                .map(|&i| cell_stats[i].1.per_vc.len())
                .max()
                .unwrap_or(0);
            for vc in 0..n_vcs {
                let shares: Vec<&VcCellStats> = members
                    .iter()
                    .filter_map(|&i| cell_stats[i].1.per_vc.get(vc))
                    .collect();
                // Pool this VC's counters through a VcRunStats, so the
                // empty-sample convention lives in one place (metrics.rs).
                let pooled = members
                    .iter()
                    .filter_map(|&i| results[i].vc_stats.get(vc))
                    .fold(evm_core::VcRunStats::default(), |mut acc, s| {
                        acc.actuations += s.actuations;
                        acc.deadline_misses += s.deadline_misses;
                        acc
                    });
                let hit_ratio = pooled.deadline_hit_ratio();
                let ises: Vec<f64> = shares.iter().map(|s| s.ise).collect();
                vc_rows.push(VcRow {
                    key: key.clone(),
                    vc: vc as evm_core::VcId,
                    loop_name: shares
                        .first()
                        .map_or_else(String::new, |s| s.loop_name.clone()),
                    runs: shares.len(),
                    actuations_mean: mean(
                        &shares
                            .iter()
                            .map(|s| s.actuations as f64)
                            .collect::<Vec<_>>(),
                    ),
                    hit_ratio,
                    ise_mean: mean(&ises),
                });
            }
        }

        let rows = order
            .into_iter()
            .zip(groups)
            .map(|(key, members)| {
                let stats: Vec<&CellStats> = members.iter().map(|&i| &cell_stats[i].1).collect();
                let mut pooled = RunAggregate::new();
                for &i in &members {
                    pooled.absorb(&results[i]);
                }
                let detects: Vec<f64> = stats.iter().filter_map(|s| s.detect_s).collect();
                let failovers: Vec<f64> = stats.iter().filter_map(|s| s.failover_s).collect();
                let ises: Vec<f64> = stats.iter().map(|s| s.ise).collect();
                let currents: Vec<f64> = stats.iter().map(|s| s.mean_current_ma).collect();
                let epochs: Vec<f64> = stats.iter().map(|s| s.epochs as f64).collect();
                let reroutes: Vec<f64> = stats
                    .iter()
                    .map(|s| s.reroute_cycles)
                    .filter(|c| !c.is_nan())
                    .collect();
                let q = |p: f64| {
                    pooled
                        .e2e_quantile(p)
                        .map_or(f64::NAN, |d| d.as_secs_f64() * 1e3)
                };
                SweepRow {
                    key,
                    config: cell_stats[members[0]].0.clone(),
                    runs: members.len(),
                    detected_runs: detects.len(),
                    fail_safe_runs: stats.iter().filter(|s| s.fail_safe).count(),
                    detect_mean_s: mean(&detects),
                    failover_mean_s: mean(&failovers),
                    failover_p50_s: quantile(&failovers, 0.5),
                    failover_p99_s: quantile(&failovers, 0.99),
                    hit_ratio: pooled.deadline_hit_ratio(),
                    e2e_p50_ms: q(0.5),
                    e2e_p99_ms: q(0.99),
                    ise_mean: mean(&ises),
                    mean_current_ma: mean(&currents),
                    epochs_mean: mean(&epochs),
                    reroute_cycles_mean: mean(&reroutes),
                }
            })
            .collect();

        SweepReport {
            cells: cell_stats,
            rows,
            vc_rows,
        }
    }

    /// The per-config CSV (one row per config point).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "key,topology,sensors,controllers,actuators,head,loss,burst,detect_threshold,\
             detect_consecutive,reroute,runs,detected_runs,fail_safe_runs,detect_mean_s,\
             failover_mean_s,failover_p50_s,failover_p99_s,hit_ratio,e2e_p50_ms,\
             e2e_p99_ms,ise_mean,mean_current_ma,epochs_mean,reroute_cycles_mean\n",
        );
        for r in &self.rows {
            let c = &r.config;
            // Axis columns use round-trip `Display` (like the key), so
            // distinct config points never render identical axis cells.
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.6},{},{},{},{},{},{}",
                r.key,
                c.topo.label(),
                c.star.sensors,
                c.star.controllers,
                c.star.actuators,
                c.star.head,
                c.loss,
                c.burst.map_or_else(|| "chan".to_string(), |b| b.label()),
                c.detect_threshold,
                c.detect_consecutive,
                c.reroute.label(),
                r.runs,
                r.detected_runs,
                r.fail_safe_runs,
                f3(r.detect_mean_s),
                f3(r.failover_mean_s),
                f3(r.failover_p50_s),
                f3(r.failover_p99_s),
                r.hit_ratio,
                f3(r.e2e_p50_ms),
                f3(r.e2e_p99_ms),
                f3(r.ise_mean),
                f3(r.mean_current_ma),
                f3(r.epochs_mean),
                f3(r.reroute_cycles_mean),
            );
        }
        out
    }

    /// The per-cell CSV (one row per run; the reproducibility suite diffs
    /// this across thread counts).
    #[must_use]
    pub fn cells_csv(&self) -> String {
        let mut out = String::from(
            "cell_id,key,rep,seed,detect_s,commit_s,failover_s,fail_safe,hit_ratio,\
             actuations,deadline_misses,e2e_p50_ms,e2e_p99_ms,ise,mean_current_ma,\
             epochs,reroute_cycles\n",
        );
        for (i, (config, s)) in self.cells.iter().enumerate() {
            let opt = |v: Option<f64>| v.map_or_else(|| "nan".to_string(), f3);
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{:.6},{},{},{},{},{},{},{},{}",
                i,
                config.key(),
                config.rep,
                config.seed,
                opt(s.detect_s),
                opt(s.commit_s),
                opt(s.failover_s),
                s.fail_safe,
                s.hit_ratio,
                s.actuations,
                s.deadline_misses,
                f3(s.e2e_p50_ms),
                f3(s.e2e_p99_ms),
                f3(s.ise),
                f3(s.mean_current_ma),
                s.epochs,
                f3(s.reroute_cycles),
            );
        }
        out
    }

    /// The per-(config, VC) CSV: one row per hosted Virtual Component per
    /// config point — loops hosted vs per-loop QoS.
    #[must_use]
    pub fn vcs_csv(&self) -> String {
        let mut out = String::from("key,vc,loop,runs,actuations_mean,hit_ratio,ise_mean\n");
        for r in &self.vc_rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{:.6},{}",
                r.key,
                r.vc,
                r.loop_name,
                r.runs,
                f3(r.actuations_mean),
                r.hit_ratio,
                f3(r.ise_mean),
            );
        }
        out
    }

    /// The per-config topology CSV: the layout family, deployment scale
    /// and pooled QoS of each config point — the row set the multi-hop
    /// `over_topology` axis reads off (one row per config point, so a
    /// star-only grid still renders a well-formed single-shape table).
    #[must_use]
    pub fn topology_csv(&self) -> String {
        let mut out = String::from(
            "key,topology,vcs,nodes,runs,hit_ratio,e2e_p50_ms,e2e_p99_ms,\
             failover_mean_s,ise_mean,mean_current_ma\n",
        );
        // Node counts are identical within a config point (same layout,
        // same topology): one pass over the cells indexes them by key.
        let mut nodes_by_key: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        for (c, s) in &self.cells {
            nodes_by_key.entry(c.key()).or_insert(s.nodes);
        }
        for r in &self.rows {
            let nodes = nodes_by_key.get(&r.key).copied().unwrap_or(0);
            let _ = writeln!(
                out,
                "{},{},{},{},{},{:.6},{},{},{},{},{}",
                r.key,
                r.config.topo.label(),
                r.config.vcs,
                nodes,
                r.runs,
                r.hit_ratio,
                f3(r.e2e_p50_ms),
                f3(r.e2e_p99_ms),
                f3(r.failover_mean_s),
                f3(r.ise_mean),
                f3(r.mean_current_ma),
            );
        }
        out
    }

    /// The per-config reconfiguration CSV: the reroute policy and the
    /// epoch/latency columns of each config point — the row set the
    /// `over_reroute` axis reads off (one row per config point, so a
    /// static-only grid still renders a well-formed table of zeros).
    #[must_use]
    pub fn reconfig_csv(&self) -> String {
        let mut out = String::from(
            "key,reroute,runs,epochs_mean,reroute_cycles_mean,detect_mean_s,\
             hit_ratio,ise_mean\n",
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{:.6},{}",
                r.key,
                r.config.reroute.label(),
                r.runs,
                f3(r.epochs_mean),
                f3(r.reroute_cycles_mean),
                f3(r.detect_mean_s),
                r.hit_ratio,
                f3(r.ise_mean),
            );
        }
        out
    }

    /// A human-readable markdown summary with the per-config table.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("# Sweep report\n\n");
        let _ = writeln!(
            out,
            "{} cells over {} config points (seed replicates pooled per row).\n",
            self.cells.len(),
            self.rows.len()
        );
        out.push_str(
            "| config | runs | detected | fail-safe | detect mean [s] | failover p50 [s] | \
             failover p99 [s] | hit ratio | e2e p99 [ms] | ISE | mean mA |\n\
             |---|---|---|---|---|---|---|---|---|---|---|\n",
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {} | {:.4} | {} | {} | {} |",
                r.key,
                r.runs,
                r.detected_runs,
                r.fail_safe_runs,
                f3(r.detect_mean_s),
                f3(r.failover_p50_s),
                f3(r.failover_p99_s),
                r.hit_ratio,
                f3(r.e2e_p99_ms),
                f3(r.ise_mean),
                f3(r.mean_current_ma),
            );
        }
        // Per-VC table, only when some config hosts more than one VC.
        if self.vc_rows.iter().any(|r| r.vc > 0) {
            out.push_str(
                "\n## Per-VC rows\n\n\
                 | config | vc | loop | runs | actuations | hit ratio | ISE |\n\
                 |---|---|---|---|---|---|---|\n",
            );
            for r in &self.vc_rows {
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {} | {:.4} | {} |",
                    r.key,
                    r.vc,
                    r.loop_name,
                    r.runs,
                    f3(r.actuations_mean),
                    r.hit_ratio,
                    f3(r.ise_mean),
                );
            }
        }
        out.push_str(
            "\nAggregation is deterministic: the same grid renders these bytes \
             at any thread count.\n",
        );
        out
    }

    /// Writes `{stem}.csv`, `{stem}_cells.csv`, `{stem}_vcs.csv`,
    /// `{stem}_topology.csv`, `{stem}_reconfig.csv` and `{stem}.md`
    /// under `dir` (created if needed) and returns the paths.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors — a sweep without its report is a failed sweep.
    pub fn write(&self, dir: &Path, stem: &str) -> Vec<PathBuf> {
        fs::create_dir_all(dir).expect("create report dir");
        let targets = [
            (format!("{stem}.csv"), self.to_csv()),
            (format!("{stem}_cells.csv"), self.cells_csv()),
            (format!("{stem}_vcs.csv"), self.vcs_csv()),
            (format!("{stem}_topology.csv"), self.topology_csv()),
            (format!("{stem}_reconfig.csv"), self.reconfig_csv()),
            (format!("{stem}.md"), self.to_markdown()),
        ];
        targets
            .into_iter()
            .map(|(name, content)| {
                let path = dir.join(name);
                fs::write(&path, content).expect("write report file");
                path
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::run_cells;
    use crate::grid::SweepGrid;
    use evm_core::runtime::{Scenario, ScenarioBuilder};
    use evm_sim::SimDuration;

    fn tiny_grid() -> SweepGrid {
        // The degenerate three-node loop keeps this unit test fast; the
        // integration suite covers failover-bearing grids.
        let template = ScenarioBuilder::minimal()
            .duration(SimDuration::from_secs(8))
            .build();
        SweepGrid::new(template)
            .over_loss(&[0.0, 0.2])
            .seeds_per_cell(2)
    }

    #[test]
    fn report_pools_replicates_per_config() {
        let cells = tiny_grid().expand();
        let results = run_cells(&cells, 1);
        let report = SweepReport::build(&cells, &results);
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows.iter().all(|r| r.runs == 2));
        // No fault scripted: nothing detected, no failover, ISE defined.
        assert!(report.rows.iter().all(|r| r.detected_runs == 0));
        assert!(report.rows.iter().all(|r| r.failover_mean_s.is_nan()));
        assert!(report.rows.iter().all(|r| r.ise_mean.is_finite()));
        assert!(report.rows.iter().all(|r| r.mean_current_ma > 0.0));
    }

    #[test]
    fn rendering_is_deterministic_across_thread_counts() {
        let cells = tiny_grid().expand();
        let serial = SweepReport::build(&cells, &run_cells(&cells, 1));
        let parallel = SweepReport::build(&cells, &run_cells(&cells, 4));
        // Byte identity is the contract; struct equality would be defeated
        // by NaN placeholders in rows without failovers (NaN != NaN).
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(serial.cells_csv(), parallel.cells_csv());
        assert_eq!(serial.to_markdown(), parallel.to_markdown());
        // Shape checks: headers + one line per row/cell.
        assert_eq!(serial.to_csv().lines().count(), 1 + serial.rows.len());
        assert_eq!(serial.cells_csv().lines().count(), 1 + serial.cells.len());
    }

    #[test]
    fn quantile_and_mean_helpers() {
        assert!(mean(&[]).is_nan());
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!(quantile(&[], 0.5).is_nan());
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert!((quantile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((quantile(&xs, 1.0) - 4.0).abs() < 1e-12);
        // Nearest rank (round half up): idx round(1.5) = 2 -> 3.0.
        assert!((quantile(&xs, 0.5) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn row_quantile_convention_matches_core_latency_quantiles() {
        use evm_core::RunAggregate;
        use evm_sim::SimDuration;
        // The same sample through both paths lands on the same rank.
        let sample_ms = [60.0, 65.0, 70.0, 90.0];
        let mut agg = RunAggregate::new();
        agg.e2e_pooled = sample_ms
            .iter()
            .map(|&ms| SimDuration::from_millis(ms as u64))
            .collect();
        for q in [0.0, 0.5, 0.99, 1.0] {
            let core_ms = agg.e2e_quantile(q).unwrap().as_secs_f64() * 1e3;
            assert!((quantile(&sample_ms, q) - core_ms).abs() < 1e-9, "q={q}");
        }
    }

    /// The reconfiguration columns through a real reroute: a relay-kill
    /// template over the `over_reroute` axis yields zero epochs on the
    /// static row and one epoch (with a finite cycle latency) on the
    /// heartbeat row — and the `_reconfig.csv` view carries both.
    #[test]
    fn reroute_axis_cells_report_epochs_and_latency() {
        use evm_core::runtime::{ReroutePolicy, ScenarioBuilder};
        use evm_netsim::NodeId;
        use evm_sim::SimTime;
        let template = ScenarioBuilder::star()
            .line(2)
            .sensors(1)
            .controllers(2)
            .actuators(1)
            .head(true)
            .backup_relays(1)
            .crash_node_at(NodeId(6), SimTime::from_secs(10))
            .duration(SimDuration::from_secs(40))
            .build();
        let cells = SweepGrid::new(template)
            .over_reroute(&[ReroutePolicy::Static, ReroutePolicy::Heartbeat])
            .expand();
        let results = run_cells(&cells, 1);
        let report = SweepReport::build(&cells, &results);
        assert_eq!(report.rows.len(), 2);
        let (stat, hb) = (&report.rows[0], &report.rows[1]);
        assert_eq!(stat.config.reroute, ReroutePolicy::Static);
        assert_eq!(stat.epochs_mean, 0.0);
        assert!(stat.reroute_cycles_mean.is_nan());
        assert_eq!(hb.config.reroute, ReroutePolicy::Heartbeat);
        assert_eq!(hb.epochs_mean, 1.0);
        assert!(
            hb.reroute_cycles_mean > 0.0 && hb.reroute_cycles_mean < 32.0,
            "reroute latency {} cycles",
            hb.reroute_cycles_mean
        );
        // The dedicated view renders one row per config point.
        let csv = report.reconfig_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains(",static,"));
        assert!(csv.contains(",heartbeat,"));
    }

    #[test]
    fn build_rejects_misaligned_inputs() {
        let cells = tiny_grid().expand();
        let results = run_cells(&cells[..2], 1);
        let r = std::panic::catch_unwind(|| SweepReport::build(&cells, &results));
        assert!(r.is_err());
    }

    #[test]
    fn fig5_fault_cells_report_failover_latency() {
        use evm_plant::ActuatorFault;
        use evm_sim::SimTime;
        let mut template = Scenario::builder()
            .duration(SimDuration::from_secs(40))
            .fault_at(SimTime::from_secs(10), ActuatorFault::paper_fault())
            .reconfig_epoch(SimDuration::ZERO)
            .build();
        template.seed = 77;
        let cells = SweepGrid::new(template).expand();
        let results = run_cells(&cells, 1);
        let report = SweepReport::build(&cells, &results);
        let row = &report.rows[0];
        assert_eq!(row.detected_runs, 1);
        assert_eq!(row.fail_safe_runs, 0);
        assert!(row.detect_mean_s > 10.0, "detected after the fault");
        assert!(
            row.failover_mean_s >= 0.0 && row.failover_mean_s < 1.0,
            "commit follows detection quickly at epoch zero: {}",
            row.failover_mean_s
        );
    }
}
