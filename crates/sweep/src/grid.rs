//! The sweep-grid DSL: axes over scenario knobs, expanded to a work-list.
//!
//! A [`SweepGrid`] starts from a template [`Scenario`] (everything the
//! axes do not touch — duration, scripted faults, epoch, warm/cold
//! backups — comes from the template) and takes the cartesian product of
//! up to five axes: star shape, extra link loss, burst process, detection
//! parameters and seed replicates. [`SweepGrid::expand`] materializes one
//! [`SweepCell`] per point, each with a seed derived purely from the base
//! seed and the cell index ([`derive_seed`]) — never from shared mutable
//! state — so the work-list is identical no matter who expands it, and
//! results are reproducible no matter which thread runs which cell.

use evm_core::runtime::{
    CyclePlanMode, Layout, ReroutePolicy, Role, Scenario, SlotStepping, Tier, TopologySpec,
    CLUSTER_HOP_M, CLUSTER_RING_M, GRID_SPACING_M, LINE_SPACING_M,
};
use evm_netsim::GilbertElliott;
use evm_sim::derive_seed;

/// Star-topology role counts for one grid axis value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StarShape {
    /// Sensor nodes (≥ 1; sensor 0 carries the focus PV).
    pub sensors: usize,
    /// Controller replicas (≥ 1; the first is the initial primary).
    pub controllers: usize,
    /// Actuator nodes (0 routes actuation through the gateway).
    pub actuators: usize,
    /// Whether the Virtual Component head is deployed.
    pub head: bool,
}

impl StarShape {
    /// The paper's Fig. 5 testbed shape (2 sensors, 2 controllers,
    /// 1 actuator, head).
    #[must_use]
    pub fn fig5() -> Self {
        StarShape {
            sensors: 2,
            controllers: 2,
            actuators: 1,
            head: true,
        }
    }

    /// A shape with `n` controller replicas, otherwise Fig. 5.
    #[must_use]
    pub fn with_controllers(n: usize) -> Self {
        StarShape {
            controllers: n,
            ..StarShape::fig5()
        }
    }

    /// Reads the per-VC shape off an existing topology spec (for grids
    /// that keep the template's topology): VC 0's role counts, which for
    /// the symmetric multi-VC stars is every VC's shape.
    #[must_use]
    pub fn of_spec(spec: &TopologySpec) -> Self {
        let count = |pred: fn(&Role) -> bool| {
            spec.nodes
                .iter()
                .filter(|n| n.vc == 0 && pred(&n.role))
                .count()
        };
        StarShape {
            sensors: count(|r| matches!(r, Role::Sensor(_))),
            controllers: count(|r| matches!(r, Role::Controller(_))),
            actuators: count(|r| matches!(r, Role::Actuator(_))),
            head: spec.nodes.iter().any(|n| n.vc == 0 && n.role == Role::Head),
        }
    }

    /// Stable label, e.g. `s2c3a1h` (trailing `h` iff the head is present).
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "s{}c{}a{}{}",
            self.sensors,
            self.controllers,
            self.actuators,
            if self.head { "h" } else { "" }
        )
    }
}

/// Gilbert–Elliott burst-process parameters for one grid axis value.
///
/// A plain-data mirror of [`GilbertElliott`] so axis values can be
/// compared, labeled and stored in cell metadata.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstSpec {
    /// P(Good → Bad) per packet.
    pub p_gb: f64,
    /// P(Bad → Good) per packet.
    pub p_bg: f64,
    /// Loss probability while Good.
    pub loss_good: f64,
    /// Loss probability while Bad.
    pub loss_bad: f64,
}

impl BurstSpec {
    /// A loss-free link process.
    #[must_use]
    pub fn ideal() -> Self {
        BurstSpec {
            p_gb: 0.0,
            p_bg: 1.0,
            loss_good: 0.0,
            loss_bad: 0.0,
        }
    }

    /// The industrial-floor process used by the lossy channel preset.
    #[must_use]
    pub fn industrial() -> Self {
        BurstSpec {
            p_gb: 0.01,
            p_bg: 0.2,
            loss_good: 0.0,
            loss_bad: 0.6,
        }
    }

    /// Materializes the process for a scenario's channel config.
    #[must_use]
    pub fn to_process(self) -> GilbertElliott {
        GilbertElliott::new(self.p_gb, self.p_bg, self.loss_good, self.loss_bad)
    }

    /// Stable label, e.g. `ideal` or `gb0.01-bg0.2-lg0-lb0.6`. All four
    /// parameters render with `f64`'s round-trip `Display`, so distinct
    /// processes never share a label.
    #[must_use]
    pub fn label(&self) -> String {
        if *self == BurstSpec::ideal() {
            "ideal".to_string()
        } else {
            format!(
                "gb{}-bg{}-lg{}-lb{}",
                self.p_gb, self.p_bg, self.loss_good, self.loss_bad
            )
        }
    }
}

/// Cell metadata: the axis values (and derived seed) behind one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct CellConfig {
    /// The layout family of the cell's topology (star unless the grid
    /// carries an `over_topology` axis).
    pub topo: Layout,
    /// Number of Virtual Components hosted on the shared cycle.
    pub vcs: usize,
    /// Star role counts of the cell's topology (per VC).
    pub star: StarShape,
    /// Extra per-link Bernoulli loss.
    pub loss: f64,
    /// Burst-process override; `None` keeps the template's channel.
    pub burst: Option<BurstSpec>,
    /// Deviation-detector threshold.
    pub detect_threshold: f64,
    /// Consecutive anomalies to confirm a fault.
    pub detect_consecutive: u32,
    /// Runtime re-routing policy of the cell.
    pub reroute: ReroutePolicy,
    /// VM execution tier every controller replica runs capsules on.
    pub tier: Tier,
    /// Slot-advancement strategy of the cell's engine.
    pub stepping: SlotStepping,
    /// Occupied-slot execution strategy of the cell's engine.
    pub plan: CyclePlanMode,
    /// Synthetic padding (bytes) appended to the migrated capsule image —
    /// the Fig. 6(b) image-size axis.
    pub capsule_pad: usize,
    /// Per-cycle transfer-slot budget of the capsule-migration lane
    /// (0 disables migration).
    pub transfer_slots: usize,
    /// Seed-replicate index within the config point.
    pub rep: u32,
    /// The derived per-cell RNG seed.
    pub seed: u64,
}

impl CellConfig {
    /// The config-point key: every axis except the seed replicate. Cells
    /// sharing a key are pooled into one report row. Float axes render
    /// with `f64`'s round-trip `Display` (never truncated), so distinct
    /// config points can never collide into one row.
    #[must_use]
    pub fn key(&self) -> String {
        // Star keys keep their pre-topology-axis format, so star-only
        // grids (and their pinned goldens) render unchanged.
        let topo = if self.topo == Layout::Star {
            String::new()
        } else {
            format!("|{}", self.topo.label())
        };
        // The reroute suffix appears only off the static default, for the
        // same reason.
        let reroute = if self.reroute == ReroutePolicy::Static {
            String::new()
        } else {
            format!("|{}", self.reroute.label())
        };
        // Likewise the tier suffix: interp cells (the oracle default)
        // keep their historical keys, so tier axes never move goldens.
        let tier = if self.tier == Tier::Interp {
            String::new()
        } else {
            format!("|{}", self.tier.label())
        };
        // And the stepping suffix: event-driven (the default cursor)
        // keeps the historical keys; only legacy rows grow one.
        let stepping = if self.stepping == SlotStepping::EventDriven {
            String::new()
        } else {
            format!("|{}", self.stepping.label())
        };
        // And the plan suffix: planned (the default compiled cycle plan)
        // keeps the historical keys; only direct-oracle rows grow one.
        let plan = if self.plan == CyclePlanMode::Planned {
            String::new()
        } else {
            format!("|{}", self.plan.label())
        };
        // Migration suffixes appear only off the disabled defaults, so
        // pre-migration grids (and their goldens) render unchanged.
        let cap = if self.capsule_pad == 0 {
            String::new()
        } else {
            format!("|cap{}", self.capsule_pad)
        };
        let xfer = if self.transfer_slots == 0 {
            String::new()
        } else {
            format!("|xfer{}", self.transfer_slots)
        };
        format!(
            "{}v{}|loss{}|{}|det{}x{}{topo}{reroute}{tier}{stepping}{plan}{cap}{xfer}",
            self.star.label(),
            self.vcs,
            self.loss,
            self.burst.map_or_else(|| "chan".to_string(), |b| b.label()),
            self.detect_threshold,
            self.detect_consecutive,
        )
    }
}

/// One unit of sweep work: a fully-built scenario plus its metadata.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Position in the expanded work-list (also the seed stream).
    pub id: usize,
    /// The axis values behind the scenario.
    pub config: CellConfig,
    /// The ready-to-run scenario.
    pub scenario: Scenario,
}

/// A cartesian grid of scenarios over `ScenarioBuilder` knobs.
///
/// Axes left unset collapse to the template's own value, so the smallest
/// grid is the template itself repeated over seed replicates.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    template: Scenario,
    topo: Option<Vec<Layout>>,
    vcs: Option<Vec<usize>>,
    stars: Option<Vec<StarShape>>,
    loss: Option<Vec<f64>>,
    burst: Option<Vec<BurstSpec>>,
    detection: Option<Vec<(f64, u32)>>,
    reroute: Option<Vec<ReroutePolicy>>,
    tier: Option<Vec<Tier>>,
    stepping: Option<Vec<SlotStepping>>,
    plan: Option<Vec<CyclePlanMode>>,
    capsule_pad: Option<Vec<usize>>,
    transfer_slots: Option<Vec<usize>>,
    seeds_per_cell: u32,
    base_seed: u64,
    radius_m: f64,
    backup_relays: usize,
}

impl SweepGrid {
    /// Starts a grid from a template scenario. The template's seed becomes
    /// the default base seed.
    #[must_use]
    pub fn new(template: Scenario) -> Self {
        let base_seed = template.seed;
        SweepGrid {
            template,
            topo: None,
            vcs: None,
            stars: None,
            loss: None,
            burst: None,
            detection: None,
            reroute: None,
            tier: None,
            stepping: None,
            plan: None,
            capsule_pad: None,
            transfer_slots: None,
            seeds_per_cell: 1,
            base_seed,
            radius_m: 15.0,
            backup_relays: 0,
        }
    }

    /// Sweeps the number of Virtual Components hosted on the shared cycle
    /// (each cell rebuilds the topology as a multi-VC star and re-derives
    /// the hosting manifest via `Scenario::host_vcs`).
    ///
    /// # Panics
    ///
    /// Panics if any count is outside `1..=MAX_VCS`.
    #[must_use]
    pub fn over_vcs(mut self, vcs: &[usize]) -> Self {
        assert!(!vcs.is_empty(), "empty axis");
        for &n in vcs {
            assert!(
                (1..=evm_core::runtime::MAX_VCS).contains(&n),
                "vc count out of range: {n}"
            );
        }
        self.vcs = Some(vcs.to_vec());
        self
    }

    /// Sweeps the layout family (star / line / grid / clustered) at the
    /// grid's role counts — the multi-hop `over_topology` axis. Cells
    /// rebuild the topology with the layouts' calibrated default
    /// spacings; line and grid host a single VC, so combining them with a
    /// `vcs` value above 1 is rejected at expansion.
    #[must_use]
    pub fn over_topology(mut self, layouts: &[Layout]) -> Self {
        assert!(!layouts.is_empty(), "empty axis");
        self.topo = Some(layouts.to_vec());
        self
    }

    /// Sweeps star topologies (role counts). Cells rebuild the topology at
    /// the grid's ring radius; without this axis the template topology is
    /// used unchanged.
    #[must_use]
    pub fn over_stars(mut self, shapes: &[StarShape]) -> Self {
        assert!(!shapes.is_empty(), "empty axis");
        self.stars = Some(shapes.to_vec());
        self
    }

    /// Sweeps the extra per-link Bernoulli loss probability.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    #[must_use]
    pub fn over_loss(mut self, losses: &[f64]) -> Self {
        assert!(!losses.is_empty(), "empty axis");
        for &p in losses {
            assert!((0.0..=1.0).contains(&p), "loss out of [0,1]: {p}");
        }
        self.loss = Some(losses.to_vec());
        self
    }

    /// Sweeps the Gilbert–Elliott burst process applied to every link.
    #[must_use]
    pub fn over_burst(mut self, bursts: &[BurstSpec]) -> Self {
        assert!(!bursts.is_empty(), "empty axis");
        self.burst = Some(bursts.to_vec());
        self
    }

    /// Sweeps the deviation detector's `(threshold, consecutive)` pair.
    #[must_use]
    pub fn over_detection(mut self, detection: &[(f64, u32)]) -> Self {
        assert!(!detection.is_empty(), "empty axis");
        self.detection = Some(detection.to_vec());
        self
    }

    /// Sweeps the runtime re-routing policy (static vs heartbeat) — the
    /// reconfiguration-plane axis: the same crash script runs frozen and
    /// self-healing side by side, and the report's reconfiguration
    /// columns (epochs, reroute latency) separate the two.
    #[must_use]
    pub fn over_reroute(mut self, policies: &[ReroutePolicy]) -> Self {
        assert!(!policies.is_empty(), "empty axis");
        self.reroute = Some(policies.to_vec());
        self
    }

    /// Sweeps the VM execution tier (interp / fused / compiled) — the
    /// tiered-execution axis: the same scenario runs on the oracle
    /// interpreter and the optimized tiers side by side. Every metric
    /// must agree across tier rows (the tiers are bit-identical by
    /// contract); only wall-clock differs.
    #[must_use]
    pub fn over_tier(mut self, tiers: &[Tier]) -> Self {
        assert!(!tiers.is_empty(), "empty axis");
        self.tier = Some(tiers.to_vec());
        self
    }

    /// Sweeps the slot-advancement strategy (legacy per-slot events vs
    /// the event-driven occupancy cursor) — the fleet hot-loop axis:
    /// every metric must agree across stepping rows (the cursor is
    /// byte-identical by contract); only wall-clock differs.
    #[must_use]
    pub fn over_stepping(mut self, steppings: &[SlotStepping]) -> Self {
        assert!(!steppings.is_empty(), "empty axis");
        self.stepping = Some(steppings.to_vec());
        self
    }

    /// Sweeps the occupied-slot execution strategy (the epoch-compiled
    /// cycle plan vs the direct per-slot oracle) — the dispatch-floor
    /// axis: every metric must agree across plan rows (the plan is
    /// byte-identical by contract); only wall-clock differs.
    #[must_use]
    pub fn over_plan(mut self, plans: &[CyclePlanMode]) -> Self {
        assert!(!plans.is_empty(), "empty axis");
        self.plan = Some(plans.to_vec());
        self
    }

    /// Sweeps the synthetic padding appended to the migrated capsule
    /// image — the Fig. 6(b) image-size axis. Pads only matter in cells
    /// whose transfer lane is enabled and whose script triggers a
    /// migration.
    #[must_use]
    pub fn over_capsule_size(mut self, pads: &[usize]) -> Self {
        assert!(!pads.is_empty(), "empty axis");
        self.capsule_pad = Some(pads.to_vec());
        self
    }

    /// Sweeps the per-cycle transfer-slot budget of the capsule-migration
    /// lane (0 keeps migration disabled — the historical default).
    #[must_use]
    pub fn over_transfer_slots(mut self, budgets: &[usize]) -> Self {
        assert!(!budgets.is_empty(), "empty axis");
        self.transfer_slots = Some(budgets.to_vec());
        self
    }

    /// Number of seed replicates per config point (≥ 1).
    #[must_use]
    pub fn seeds_per_cell(mut self, n: u32) -> Self {
        assert!(n >= 1, "at least one seed per cell");
        self.seeds_per_cell = n;
        self
    }

    /// The base seed all cell seeds are derived from.
    #[must_use]
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Ring radius used when the star axis rebuilds topologies.
    #[must_use]
    pub fn radius_m(mut self, radius: f64) -> Self {
        self.radius_m = radius;
        self
    }

    /// Redundant relay chains added when a topology axis rebuilds line or
    /// clustered cells (a rebuilt topology does not inherit the
    /// template's chains — `StarShape` carries role counts only, so a
    /// reroute-policy sweep over rebuilt multi-hop cells must ask for its
    /// redundancy here or the heartbeat rows would misreport as
    /// "reroute failed").
    #[must_use]
    pub fn backup_relays(mut self, n: usize) -> Self {
        self.backup_relays = n;
        self
    }

    /// Number of cells the grid expands to.
    #[must_use]
    pub fn len(&self) -> usize {
        let ax = |n: Option<usize>| n.unwrap_or(1);
        ax(self.topo.as_ref().map(Vec::len))
            * ax(self.vcs.as_ref().map(Vec::len))
            * ax(self.stars.as_ref().map(Vec::len))
            * ax(self.loss.as_ref().map(Vec::len))
            * ax(self.burst.as_ref().map(Vec::len))
            * ax(self.detection.as_ref().map(Vec::len))
            * ax(self.reroute.as_ref().map(Vec::len))
            * ax(self.tier.as_ref().map(Vec::len))
            * ax(self.stepping.as_ref().map(Vec::len))
            * ax(self.plan.as_ref().map(Vec::len))
            * ax(self.capsule_pad.as_ref().map(Vec::len))
            * ax(self.transfer_slots.as_ref().map(Vec::len))
            * self.seeds_per_cell as usize
    }

    /// `true` for a degenerate grid (never: axes reject empty inputs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the cartesian product into the work-list, in a fixed axis
    /// order (topology → vcs → stars → loss → burst → detection →
    /// reroute → tier → stepping → plan → capsule size → transfer
    /// slots → replicate). Cell ids and seeds depend only on the grid
    /// definition.
    ///
    /// Every cell's topology is validated here, so a malformed template
    /// fails fast at grid definition (with the cell id and the typed
    /// `TopologyError`) instead of panicking a worker hours into the
    /// batch.
    ///
    /// # Panics
    ///
    /// Panics if any cell's topology spec is malformed.
    #[must_use]
    pub fn expand(&self) -> Vec<SweepCell> {
        // The backup-relay knob only acts when cells rebuild their
        // topology; silently dropping it would produce exactly the
        // "reroute failed" misreporting it exists to prevent.
        assert!(
            self.backup_relays == 0
                || self.topo.is_some()
                || self.vcs.is_some()
                || self.stars.is_some(),
            "backup_relays needs a topology-rebuilding axis (over_topology/over_vcs/\
             over_stars); without one, bake the chains into the template via \
             ScenarioBuilder::backup_relays"
        );
        let topo_axis: Vec<Option<Layout>> = match &self.topo {
            Some(v) => v.iter().copied().map(Some).collect(),
            None => vec![None],
        };
        let vcs_axis: Vec<Option<usize>> = match &self.vcs {
            Some(v) => v.iter().copied().map(Some).collect(),
            None => vec![None],
        };
        let stars: Vec<Option<StarShape>> = match &self.stars {
            Some(v) => v.iter().copied().map(Some).collect(),
            None => vec![None],
        };
        let losses = self
            .loss
            .clone()
            .unwrap_or_else(|| vec![self.template.extra_loss]);
        let bursts: Vec<Option<BurstSpec>> = match &self.burst {
            Some(v) => v.iter().copied().map(Some).collect(),
            None => vec![None],
        };
        let detection = self.detection.clone().unwrap_or_else(|| {
            vec![(
                self.template.detect_threshold,
                self.template.detect_consecutive,
            )]
        });
        let reroutes = self
            .reroute
            .clone()
            .unwrap_or_else(|| vec![self.template.reroute]);
        let tiers = self
            .tier
            .clone()
            .unwrap_or_else(|| vec![self.template.tier]);
        let steppings = self
            .stepping
            .clone()
            .unwrap_or_else(|| vec![self.template.stepping]);
        let plans = self
            .plan
            .clone()
            .unwrap_or_else(|| vec![self.template.plan]);
        let pads = self
            .capsule_pad
            .clone()
            .unwrap_or_else(|| vec![self.template.capsule_pad_bytes]);
        let budgets = self
            .transfer_slots
            .clone()
            .unwrap_or_else(|| vec![self.template.transfer_slots]);

        let template_shape = StarShape::of_spec(&self.template.topology);
        let template_vcs = self.template.n_vcs();
        let mut cells = Vec::with_capacity(self.len());
        for &topo in &topo_axis {
            for &vcs in &vcs_axis {
                for star in &stars {
                    for &loss in &losses {
                        for burst in &bursts {
                            for &(threshold, consecutive) in &detection {
                                for &reroute in &reroutes {
                                    for &tier in &tiers {
                                        for &stepping in &steppings {
                                            for &plan in &plans {
                                                for &pad in &pads {
                                                    for &budget in &budgets {
                                                        for rep in 0..self.seeds_per_cell {
                                                            let id = cells.len();
                                                            let seed = derive_seed(
                                                                self.base_seed,
                                                                id as u64,
                                                            );
                                                            let mut scenario =
                                                                self.template.clone();
                                                            // Any varied topology axis rebuilds
                                                            // the topology (a vcs value also
                                                            // re-derives the hosting manifest).
                                                            if topo.is_some()
                                                                || vcs.is_some()
                                                                || star.is_some()
                                                            {
                                                                let s =
                                                                    star.unwrap_or(template_shape);
                                                                let n = vcs.unwrap_or(template_vcs);
                                                                scenario.topology = build_topology(
                                                                    id,
                                                                    topo.unwrap_or(Layout::Star),
                                                                    n,
                                                                    s,
                                                                    self.radius_m,
                                                                    self.backup_relays,
                                                                );
                                                                scenario.host_vcs(n);
                                                            }
                                                            scenario.extra_loss = loss;
                                                            if let Some(b) = burst {
                                                                scenario.channel.burst =
                                                                    b.to_process();
                                                            }
                                                            scenario.detect_threshold = threshold;
                                                            scenario.detect_consecutive =
                                                                consecutive;
                                                            scenario.reroute = reroute;
                                                            scenario.tier = tier;
                                                            scenario.stepping = stepping;
                                                            scenario.plan = plan;
                                                            scenario.capsule_pad_bytes = pad;
                                                            scenario.transfer_slots = budget;
                                                            scenario.seed = seed;
                                                            validate_cell(id, &scenario);
                                                            cells.push(SweepCell {
                                                                id,
                                                                config: CellConfig {
                                                                    topo: topo
                                                                        .unwrap_or(Layout::Star),
                                                                    vcs: vcs
                                                                        .unwrap_or(template_vcs),
                                                                    star: star
                                                                        .unwrap_or(template_shape),
                                                                    loss,
                                                                    burst: *burst,
                                                                    detect_threshold: threshold,
                                                                    detect_consecutive: consecutive,
                                                                    reroute,
                                                                    tier,
                                                                    stepping,
                                                                    plan,
                                                                    capsule_pad: pad,
                                                                    transfer_slots: budget,
                                                                    rep,
                                                                    seed,
                                                                },
                                                                scenario,
                                                            });
                                                        }
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

/// Expansion-time validation of one cell: the topology must resolve
/// (roles), route (every flow's receivers reachable over the physical
/// connectivity — the multi-hop layouts make this a real failure mode)
/// and schedule (the pipeline fits the RT-Link cycle). Mirrors engine
/// construction exactly — same channel stream — so a cell that passes
/// here cannot panic a worker hours into the batch.
fn validate_cell(id: usize, scenario: &Scenario) {
    let mut rng = evm_sim::SimRng::seed_from(scenario.seed);
    let mut channel = evm_netsim::Channel::new(scenario.channel.clone(), rng.fork(1));
    let (topology, map) = match scenario.topology.try_resolve(&mut channel) {
        Ok(out) => out,
        Err(e) => panic!("sweep cell {id} has a malformed topology: {e}"),
    };
    let routed =
        match evm_core::runtime::route_flows(&topology, &evm_core::runtime::synth_flows(&map)) {
            Ok(routed) => routed,
            Err(e) => panic!("sweep cell {id} has an unroutable topology: {e}"),
        };
    let flows: Vec<_> = routed.flows.into_iter().map(|(f, _)| f).collect();
    let placed = if scenario.serial_schedule {
        evm_mac::rtlink::SlotSchedule::place_flows_serial(&scenario.rtlink, &flows)
    } else {
        evm_mac::rtlink::SlotSchedule::place_flows(&scenario.rtlink, &topology, &flows)
    };
    let mut schedule = match placed {
        Ok((s, _order)) => s,
        Err(e) => panic!("sweep cell {id} cannot schedule its flows: {e}"),
    };
    // The migration lane reserves its slots after the pipeline at engine
    // setup; mirror that reservation so an overflowing budget fails here
    // with the cell id, not inside a worker.
    if scenario.transfer_slots > 0 {
        for vc in 0..map.n_vcs() {
            let roles = map.vc(vc as evm_core::runtime::VcId);
            let Some(&src) = roles.controllers.first() else {
                continue;
            };
            let mut listeners: Vec<_> = roles
                .head
                .into_iter()
                .chain(roles.controllers.iter().copied())
                .filter(|&n| n != src)
                .collect();
            listeners.sort_unstable();
            listeners.dedup();
            if listeners.is_empty() {
                continue;
            }
            if let Err(e) =
                schedule.reserve_transfer_slots(src, &listeners, scenario.transfer_slots)
            {
                panic!("sweep cell {id} cannot reserve its transfer slots: {e}");
            }
        }
    }
}

/// Materializes one cell's topology for the given layout family. Line
/// and grid layouts host a single VC; pairing them with a multi-VC axis
/// value is a grid-definition error surfaced with the cell id.
fn build_topology(
    id: usize,
    layout: Layout,
    vcs: usize,
    s: StarShape,
    radius_m: f64,
    backup_relays: usize,
) -> TopologySpec {
    match layout {
        Layout::Star => {
            assert!(
                backup_relays == 0,
                "sweep cell {id}: backup relays apply to line/clustered layouts"
            );
            TopologySpec::multi_star(vcs, s.sensors, s.controllers, s.actuators, s.head, radius_m)
        }
        Layout::Line { hops } => {
            assert!(
                vcs == 1,
                "sweep cell {id}: line layouts host a single VC, got {vcs}"
            );
            TopologySpec::line_with_backups(
                hops,
                s.sensors,
                s.controllers,
                s.actuators,
                s.head,
                LINE_SPACING_M,
                backup_relays,
            )
        }
        Layout::Grid { w, h } => {
            assert!(
                vcs == 1,
                "sweep cell {id}: grid layouts host a single VC, got {vcs}"
            );
            assert!(
                backup_relays == 0,
                "sweep cell {id}: backup relays apply to line/clustered layouts"
            );
            TopologySpec::grid(
                w,
                h,
                s.sensors,
                s.controllers,
                s.actuators,
                s.head,
                GRID_SPACING_M,
            )
        }
        Layout::Clustered => TopologySpec::clustered_with_backups(
            vcs,
            s.sensors,
            s.controllers,
            s.actuators,
            s.head,
            CLUSTER_HOP_M,
            CLUSTER_RING_M,
            backup_relays,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evm_sim::SimDuration;

    fn short_template() -> Scenario {
        let mut t = Scenario::baseline();
        t.duration = SimDuration::from_secs(5);
        t
    }

    #[test]
    fn expansion_is_the_cartesian_product_in_fixed_order() {
        let grid = SweepGrid::new(short_template())
            .over_stars(&[StarShape::fig5(), StarShape::with_controllers(3)])
            .over_loss(&[0.0, 0.1, 0.2])
            .over_detection(&[(5.0, 3), (2.0, 5)])
            .seeds_per_cell(4);
        assert_eq!(grid.len(), 2 * 3 * 2 * 4);
        let cells = grid.expand();
        assert_eq!(cells.len(), grid.len());
        // Innermost axis is the replicate; next is detection.
        assert_eq!(cells[0].config.rep, 0);
        assert_eq!(cells[1].config.rep, 1);
        assert_eq!(cells[4].config.detect_consecutive, 5);
        // Outermost axis is the star shape.
        assert_eq!(cells[0].config.star.controllers, 2);
        assert_eq!(cells[24].config.star.controllers, 3);
        // Ids are positional.
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.id, i);
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct_across_cells() {
        let grid = SweepGrid::new(short_template())
            .over_loss(&[0.0, 0.3])
            .seeds_per_cell(8)
            .base_seed(1234);
        let a = grid.expand();
        let b = grid.expand();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.config, y.config);
            assert_eq!(x.scenario.seed, y.scenario.seed);
        }
        let mut seeds: Vec<u64> = a.iter().map(|c| c.scenario.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), a.len(), "cell seeds must be distinct");
    }

    #[test]
    fn axes_rewrite_the_scenario_knobs() {
        let cells = SweepGrid::new(short_template())
            .over_stars(&[StarShape {
                sensors: 2,
                controllers: 3,
                actuators: 1,
                head: true,
            }])
            .over_loss(&[0.25])
            .over_burst(&[BurstSpec::industrial()])
            .over_detection(&[(3.5, 4)])
            .expand();
        assert_eq!(cells.len(), 1);
        let s = &cells[0].scenario;
        assert_eq!(s.topology.nodes.len(), 8); // GW + 2 + 3 + 1 + head
        assert_eq!(s.extra_loss, 0.25);
        assert_eq!(s.detect_threshold, 3.5);
        assert_eq!(s.detect_consecutive, 4);
    }

    #[test]
    fn unset_axes_keep_the_template() {
        let template = short_template();
        let cells = SweepGrid::new(template.clone()).expand();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].scenario.topology, template.topology);
        assert_eq!(cells[0].scenario.extra_loss, template.extra_loss);
        assert_eq!(cells[0].config.star, StarShape::fig5());
        assert_eq!(cells[0].config.burst, None);
    }

    #[test]
    fn config_keys_pool_replicates_only() {
        let cells = SweepGrid::new(short_template())
            .over_loss(&[0.0, 0.1])
            .seeds_per_cell(3)
            .expand();
        let keys: Vec<String> = cells.iter().map(|c| c.config.key()).collect();
        assert_eq!(keys[0], keys[1]);
        assert_eq!(keys[1], keys[2]);
        assert_ne!(keys[2], keys[3]);
    }

    #[test]
    fn nearby_float_axes_never_share_a_key() {
        // Keys carry full round-trip floats, not truncated decimals:
        // config points closer than any fixed precision stay distinct.
        let cells = SweepGrid::new(short_template())
            .over_detection(&[(0.124, 3), (0.1239, 3)])
            .expand();
        assert_ne!(cells[0].config.key(), cells[1].config.key());
        let cells = SweepGrid::new(short_template())
            .over_loss(&[0.1, 0.1001])
            .expand();
        assert_ne!(cells[0].config.key(), cells[1].config.key());
        // Burst processes differing in any parameter stay distinct too.
        let a = BurstSpec::industrial();
        let b = BurstSpec {
            loss_good: 0.3,
            ..BurstSpec::industrial()
        };
        let cells = SweepGrid::new(short_template())
            .over_burst(&[a, b])
            .expand();
        assert_ne!(cells[0].config.key(), cells[1].config.key());
    }

    #[test]
    #[should_panic(expected = "loss out of [0,1]")]
    fn bad_loss_axis_rejected() {
        let _ = SweepGrid::new(short_template()).over_loss(&[1.5]);
    }

    #[test]
    fn vcs_axis_rebuilds_topology_and_hosting_manifest() {
        let cells = SweepGrid::new(short_template()).over_vcs(&[1, 2]).expand();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].config.vcs, 1);
        assert_eq!(cells[0].scenario.n_vcs(), 1);
        assert_eq!(cells[1].config.vcs, 2);
        assert_eq!(cells[1].scenario.n_vcs(), 2);
        // Fig. 5 shape per VC: GW + 2 × (2 sensors + 2 controllers +
        // 1 actuator + head).
        assert_eq!(cells[1].scenario.topology.nodes.len(), 13);
        // VC 1 hosts the next canonical loop, and its PV is sampled.
        assert_eq!(cells[1].scenario.vc_loop(1).name, "LC-InletSep");
        assert!(cells[1]
            .scenario
            .sampled_tags
            .contains(&"InletSep.LevelPct".to_string()));
        // The vcs value lands in the config key.
        assert!(cells[1].config.key().starts_with("s2c2a1hv2|"));
        assert!(cells[0].config.key().starts_with("s2c2a1hv1|"));
    }

    #[test]
    #[should_panic(expected = "vc count out of range")]
    fn bad_vcs_axis_rejected() {
        let _ = SweepGrid::new(short_template()).over_vcs(&[0]);
    }

    /// The `over_topology` axis rebuilds each cell's topology per layout
    /// family; keys grow a layout suffix only off the star family, so
    /// star-only grids keep their historical keys.
    #[test]
    fn topology_axis_rebuilds_layouts() {
        let shapes = [
            Layout::Star,
            Layout::Line { hops: 2 },
            Layout::Grid { w: 2, h: 3 },
            Layout::Clustered,
        ];
        let cells = SweepGrid::new(short_template())
            .over_topology(&shapes)
            .over_stars(&[StarShape {
                sensors: 1,
                controllers: 2,
                actuators: 1,
                head: false,
            }])
            .expand();
        assert_eq!(cells.len(), 4);
        // Star: GW + 4 role nodes. Line(2): + relay = 6. Grid 2x3: fills
        // the 6-cell lattice. Clustered: + 2 relays = 7.
        assert_eq!(cells[0].scenario.topology.nodes.len(), 5);
        assert_eq!(cells[1].scenario.topology.nodes.len(), 6);
        assert_eq!(cells[2].scenario.topology.nodes.len(), 6);
        assert_eq!(cells[3].scenario.topology.nodes.len(), 7);
        assert!(cells[0].config.key().ends_with("det5x3"));
        assert!(cells[1].config.key().ends_with("|line2"));
        assert!(cells[2].config.key().ends_with("|grid2x3"));
        assert!(cells[3].config.key().ends_with("|clustered"));
        // Every non-star cell hosts relay-capable routes: the line and
        // clustered layouts carry dedicated relay roles.
        assert!(cells[1]
            .scenario
            .topology
            .nodes
            .iter()
            .any(|n| matches!(n.role, Role::Relay(_))));
    }

    #[test]
    #[should_panic(expected = "line layouts host a single VC")]
    fn multi_vc_line_cells_rejected_at_expansion() {
        let _ = SweepGrid::new(short_template())
            .over_topology(&[Layout::Line { hops: 2 }])
            .over_vcs(&[2])
            .expand();
    }

    /// Clustered cells pair the layout with the vcs axis: one cluster
    /// per hosted VC.
    #[test]
    fn clustered_cells_follow_the_vcs_axis() {
        let cells = SweepGrid::new(short_template())
            .over_topology(&[Layout::Clustered])
            .over_vcs(&[1, 2])
            .over_stars(&[StarShape {
                sensors: 1,
                controllers: 2,
                actuators: 1,
                head: true,
            }])
            .expand();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].scenario.n_vcs(), 1);
        assert_eq!(cells[1].scenario.n_vcs(), 2);
        // 1 + k * (5 members + 2 relays).
        assert_eq!(cells[0].scenario.topology.nodes.len(), 8);
        assert_eq!(cells[1].scenario.topology.nodes.len(), 15);
    }

    /// The `over_reroute` axis rewrites the policy knob per cell; static
    /// cells keep their historical keys while heartbeat cells grow a
    /// suffix, so pre-existing star-grid goldens never move.
    #[test]
    fn reroute_axis_rewrites_policy_and_suffixes_keys() {
        let cells = SweepGrid::new(short_template())
            .over_reroute(&[ReroutePolicy::Static, ReroutePolicy::Heartbeat])
            .seeds_per_cell(2)
            .expand();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].scenario.reroute, ReroutePolicy::Static);
        assert_eq!(cells[2].scenario.reroute, ReroutePolicy::Heartbeat);
        assert!(!cells[0].config.key().contains("static"));
        assert!(cells[2].config.key().ends_with("|heartbeat"));
        // Replicates pool within a policy, never across.
        assert_eq!(cells[0].config.key(), cells[1].config.key());
        assert_ne!(cells[1].config.key(), cells[2].config.key());
    }

    /// The `over_tier` axis rewrites the VM tier knob per cell; interp
    /// cells (the oracle default) keep their historical keys while the
    /// optimized tiers grow a suffix, so tier sweeps never move
    /// pre-existing goldens.
    #[test]
    fn tier_axis_rewrites_vm_tier_and_suffixes_keys() {
        let cells = SweepGrid::new(short_template())
            .over_tier(&[Tier::Interp, Tier::Fused, Tier::Compiled])
            .seeds_per_cell(2)
            .expand();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].scenario.tier, Tier::Interp);
        assert_eq!(cells[2].scenario.tier, Tier::Fused);
        assert_eq!(cells[4].scenario.tier, Tier::Compiled);
        assert!(!cells[0].config.key().contains("interp"));
        assert!(cells[2].config.key().ends_with("|fused"));
        assert!(cells[4].config.key().ends_with("|compiled"));
        // Replicates pool within a tier, never across.
        assert_eq!(cells[0].config.key(), cells[1].config.key());
        assert_ne!(cells[1].config.key(), cells[2].config.key());
        // Without the axis, cells inherit the template tier (interp).
        let bare = SweepGrid::new(short_template()).expand();
        assert_eq!(bare[0].config.tier, Tier::Interp);
    }

    /// The `over_stepping` axis rewrites the slot-advancement knob per
    /// cell; event-driven cells (the default cursor) keep their
    /// historical keys while legacy rows grow a suffix, so stepping
    /// sweeps never move goldens.
    #[test]
    fn stepping_axis_rewrites_knob_and_suffixes_keys() {
        let cells = SweepGrid::new(short_template())
            .over_stepping(&[SlotStepping::EventDriven, SlotStepping::Legacy])
            .seeds_per_cell(2)
            .expand();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].scenario.stepping, SlotStepping::EventDriven);
        assert_eq!(cells[2].scenario.stepping, SlotStepping::Legacy);
        assert!(!cells[0].config.key().contains("event"));
        assert!(cells[2].config.key().ends_with("|legacy"));
        // Replicates pool within a stepping, never across.
        assert_eq!(cells[0].config.key(), cells[1].config.key());
        assert_ne!(cells[1].config.key(), cells[2].config.key());
        // Without the axis, cells inherit the template stepping.
        let bare = SweepGrid::new(short_template()).expand();
        assert_eq!(bare[0].config.stepping, SlotStepping::EventDriven);
    }

    /// The `over_plan` axis rewrites the occupied-slot execution knob
    /// per cell; planned cells (the default compiled plan) keep their
    /// historical keys while direct-oracle rows grow a suffix, so plan
    /// sweeps never move goldens.
    #[test]
    fn plan_axis_rewrites_knob_and_suffixes_keys() {
        let cells = SweepGrid::new(short_template())
            .over_plan(&[CyclePlanMode::Planned, CyclePlanMode::Direct])
            .seeds_per_cell(2)
            .expand();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].scenario.plan, CyclePlanMode::Planned);
        assert_eq!(cells[2].scenario.plan, CyclePlanMode::Direct);
        assert!(!cells[0].config.key().contains("planned"));
        assert!(cells[2].config.key().ends_with("|direct"));
        // Replicates pool within a plan mode, never across.
        assert_eq!(cells[0].config.key(), cells[1].config.key());
        assert_ne!(cells[1].config.key(), cells[2].config.key());
        // Without the axis, cells inherit the template plan.
        let bare = SweepGrid::new(short_template()).expand();
        assert_eq!(bare[0].config.plan, CyclePlanMode::Planned);
    }

    /// The migration axes rewrite the capsule-pad and transfer-slot
    /// knobs per cell; disabled cells (pad 0, budget 0 — the historical
    /// defaults) keep their keys, so migration sweeps never move
    /// pre-existing goldens.
    #[test]
    fn migration_axes_rewrite_knobs_and_suffix_keys() {
        let cells = SweepGrid::new(short_template())
            .over_capsule_size(&[0, 256])
            .over_transfer_slots(&[0, 2])
            .seeds_per_cell(2)
            .expand();
        assert_eq!(cells.len(), 8);
        // Axis order: capsule size is outer, transfer slots inner.
        assert_eq!(cells[0].scenario.capsule_pad_bytes, 0);
        assert_eq!(cells[0].scenario.transfer_slots, 0);
        assert_eq!(cells[2].scenario.transfer_slots, 2);
        assert_eq!(cells[4].scenario.capsule_pad_bytes, 256);
        // Defaults keep the historical key; off-default cells grow
        // |cap{n} / |xfer{n} suffixes.
        assert!(!cells[0].config.key().contains("cap"));
        assert!(!cells[0].config.key().contains("xfer"));
        assert!(cells[2].config.key().ends_with("|xfer2"));
        assert!(cells[4].config.key().ends_with("|cap256"));
        assert!(cells[6].config.key().ends_with("|cap256|xfer2"));
        // Replicates pool within a config point, never across.
        assert_eq!(cells[0].config.key(), cells[1].config.key());
        assert_ne!(cells[1].config.key(), cells[2].config.key());
        // Without the axes, cells inherit the (disabled) template knobs.
        let bare = SweepGrid::new(short_template()).expand();
        assert_eq!(bare[0].config.capsule_pad, 0);
        assert_eq!(bare[0].config.transfer_slots, 0);
    }

    /// A transfer budget that cannot fit after the pipeline fails at
    /// expansion with the cell id, mirroring engine setup.
    #[test]
    #[should_panic(expected = "sweep cell 0 cannot reserve its transfer slots")]
    fn overflowing_transfer_budget_rejected_at_expansion() {
        let _ = SweepGrid::new(short_template())
            .over_transfer_slots(&[500])
            .expand();
    }

    /// Rebuilt multi-hop cells keep their redundancy when the grid asks
    /// for it: `backup_relays` threads through the topology axis, so a
    /// reroute sweep over rebuilt line cells still has a chain to fall
    /// back to.
    #[test]
    fn backup_relays_thread_through_topology_rebuilds() {
        let cells = SweepGrid::new(short_template())
            .over_topology(&[Layout::Line { hops: 2 }])
            .over_stars(&[StarShape {
                sensors: 1,
                controllers: 2,
                actuators: 1,
                head: true,
            }])
            .backup_relays(1)
            .expand();
        assert!(cells[0]
            .scenario
            .topology
            .nodes
            .iter()
            .any(|n| n.label == "RB1"));
        // Without the knob, rebuilt cells have no backup chain.
        let bare = SweepGrid::new(short_template())
            .over_topology(&[Layout::Line { hops: 2 }])
            .over_stars(&[StarShape {
                sensors: 1,
                controllers: 2,
                actuators: 1,
                head: true,
            }])
            .expand();
        assert!(!bare[0]
            .scenario
            .topology
            .nodes
            .iter()
            .any(|n| n.label.starts_with("RB")));
    }

    /// `backup_relays` without a rebuild axis would be silently dropped —
    /// rejected at expansion instead.
    #[test]
    #[should_panic(expected = "backup_relays needs a topology-rebuilding axis")]
    fn backup_relays_without_rebuild_axis_rejected() {
        let _ = SweepGrid::new(short_template()).backup_relays(1).expand();
    }

    /// A malformed template fails at grid definition with the cell id,
    /// not hours later inside a worker thread.
    #[test]
    #[should_panic(expected = "sweep cell 0 has a malformed topology")]
    fn expand_rejects_malformed_template() {
        let mut template = short_template();
        template.topology.nodes.retain(|n| n.role != Role::Gateway);
        let _ = SweepGrid::new(template).expand();
    }

    /// Routability is validated at expansion too: a role-complete
    /// topology whose flows cannot be carried by the physical
    /// connectivity (a stranded node) is rejected with the cell id
    /// instead of panicking a worker mid-batch.
    #[test]
    #[should_panic(expected = "sweep cell 0 has an unroutable topology")]
    fn expand_rejects_unroutable_template() {
        let mut template = short_template();
        // Strand the focus sensor far out of everyone's radio range.
        template.topology.nodes[1].position = evm_netsim::Position::new(5000.0, 0.0);
        let _ = SweepGrid::new(template).expand();
    }

    /// ...and so is schedulability: a pipeline that cannot fit the
    /// configured RT-Link cycle fails at expansion.
    #[test]
    #[should_panic(expected = "sweep cell 0 cannot schedule its flows")]
    fn expand_rejects_unschedulable_template() {
        let mut template = short_template();
        template.rtlink.slots_per_cycle = 4; // 3 data slots for 8 flows
        let _ = SweepGrid::new(template).expand();
    }
}
