//! Common MAC performance metrics.

use std::fmt;

use evm_sim::SimDuration;

/// Performance summary of a MAC protocol under a given workload.
#[derive(Debug, Clone, PartialEq)]
pub struct MacMetrics {
    /// Protocol name.
    pub protocol: &'static str,
    /// Average current draw, mA.
    pub avg_current_ma: f64,
    /// Projected lifetime on 2×AA cells, years.
    pub lifetime_years: f64,
    /// Expected one-hop delivery latency.
    pub latency: SimDuration,
    /// Expected delivery ratio in `[0, 1]` (collisions/contention only;
    /// channel loss is modeled separately).
    pub delivery_ratio: f64,
}

impl fmt::Display for MacMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} I={:.4} mA life={:.2} y lat={} dr={:.3}",
            self.protocol,
            self.avg_current_ma,
            self.lifetime_years,
            self.latency,
            self.delivery_ratio
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let m = MacMetrics {
            protocol: "rt-link",
            avg_current_ma: 0.5,
            lifetime_years: 1.8,
            latency: SimDuration::from_millis(125),
            delivery_ratio: 1.0,
        };
        let s = m.to_string();
        assert!(s.contains("rt-link") && s.contains("1.80"));
    }
}
