//! S-MAC: loosely synchronized duty-cycled listen/sleep frames (Ye,
//! Heidemann & Estrin, INFOCOM 2002).
//!
//! Nodes agree on a common frame structure: a fixed *listen window* (SYNC +
//! RTS/CTS) followed by a sleep period whose length sets the duty cycle.
//! The listen window is paid **every frame regardless of traffic** — the
//! idle-listening cost that RT-Link's scheduled slots eliminate.

use evm_sim::SimDuration;

use crate::lifetime::{power, DutyCycledMac, Workload};

/// S-MAC model parameters.
#[derive(Debug, Clone)]
pub struct SMac {
    /// Fixed listen window per frame (SYNC + contention window).
    pub listen_window: SimDuration,
    /// Airtime of a periodic SYNC packet.
    pub sync_packet: SimDuration,
    /// SYNC packets are sent once every this many frames.
    pub sync_period_frames: u64,
    /// CSMA vulnerable window factor for the collision estimate.
    pub csma_factor: f64,
}

impl Default for SMac {
    fn default() -> Self {
        SMac {
            listen_window: SimDuration::from_millis(115),
            sync_packet: SimDuration::from_micros(1_500),
            sync_period_frames: 10,
            csma_factor: 0.5,
        }
    }
}

impl SMac {
    /// Frame length implied by a duty cycle: `frame = listen / duty`.
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `(0, 1]`.
    #[must_use]
    pub fn frame_length(&self, duty: f64) -> SimDuration {
        assert!(duty > 0.0 && duty <= 1.0, "duty out of (0,1]: {duty}");
        SimDuration::from_secs_f64(self.listen_window.as_secs_f64() / duty)
    }
}

impl DutyCycledMac for SMac {
    fn name(&self) -> &'static str {
        "s-mac"
    }

    fn average_current_ma(&self, duty: f64, wl: &Workload) -> f64 {
        let p = power();
        let frame = self.frame_length(duty).as_secs_f64();
        let t_data = wl.data_airtime().as_secs_f64();

        // Idle listening: the whole listen window, every frame.
        let idle_listen = p.rx_ma * duty;
        // Periodic SYNC transmissions.
        let sync_tx =
            p.tx_ma * self.sync_packet.as_secs_f64() / (frame * self.sync_period_frames as f64);
        // Data exchange (RTS/CTS + data approximated by 1.5x data airtime).
        let tx = wl.tx_per_sec * 1.5 * t_data * p.tx_ma;
        let rx = wl.rx_per_sec * 1.5 * t_data * p.rx_ma;
        let active_frac = duty + wl.tx_per_sec * 1.5 * t_data + wl.rx_per_sec * 1.5 * t_data;
        let sleep = p.sleep_ma * (1.0 - active_frac).max(0.0);
        idle_listen + sync_tx + tx + rx + sleep
    }

    fn delivery_latency(&self, duty: f64, wl: &Workload) -> SimDuration {
        // A packet arriving mid-sleep waits half a frame on average for the
        // next listen window.
        self.frame_length(duty) / 2 + wl.data_airtime()
    }

    fn delivery_ratio(&self, duty: f64, wl: &Workload) -> f64 {
        // Contention is compressed into the listen window: effective offered
        // load is scaled by 1/duty.
        let t_vuln = wl.data_airtime().as_secs_f64() / duty;
        let lambda = wl.contenders as f64 * wl.tx_per_sec;
        (-self.csma_factor * 2.0 * lambda * t_vuln).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_length_from_duty() {
        let s = SMac::default();
        assert_eq!(s.frame_length(0.05).as_millis(), 2_300);
        assert_eq!(s.frame_length(1.0), s.listen_window);
    }

    #[test]
    fn idle_listening_dominates_at_any_duty() {
        let s = SMac::default();
        let idle = Workload {
            tx_per_sec: 0.0,
            rx_per_sec: 0.0,
            payload_bytes: 0,
            contenders: 0,
        };
        for duty in [0.01, 0.05, 0.1, 0.5] {
            let i = s.average_current_ma(duty, &idle);
            assert!(
                i >= 19.7 * duty,
                "idle listening must cost at least duty x rx: {i} at {duty}"
            );
        }
    }

    #[test]
    fn latency_is_half_frame_plus_data() {
        let s = SMac::default();
        let wl = Workload::periodic(6.0, 32, 4);
        let lat = s.delivery_latency(0.05, &wl);
        assert!(lat >= SimDuration::from_millis(1_150));
    }

    #[test]
    fn collision_worsens_at_lower_duty() {
        // Same offered load squeezed into a shorter listen fraction.
        let s = SMac::default();
        let wl = Workload::periodic(30.0, 32, 8);
        assert!(s.delivery_ratio(0.02, &wl) < s.delivery_ratio(0.5, &wl));
    }

    #[test]
    #[should_panic(expected = "duty out of")]
    fn bad_duty_panics() {
        let _ = SMac::default().frame_length(1.5);
    }
}
