//! Medium-access-control layer of the EVM reproduction.
//!
//! The paper builds on **RT-Link** (Rowe et al., SECON 2006): a TDMA
//! protocol with out-of-band AM-carrier time synchronization that achieves
//! sub-150 µs slot jitter and collision-free scheduled communication, and
//! compares it (in §2.1) against the asynchronous **B-MAC** and the loosely
//! synchronized **S-MAC**. This crate models all three:
//!
//! * [`timesync`] — the AM-carrier synchronization error model,
//! * [`rtlink`] — TDMA cycles, slot schedules and 2-hop interference-free
//!   slot assignment,
//! * [`bmac`] — low-power-listening CSMA with preamble sampling,
//! * [`smac`] — fixed duty-cycle listen/sleep frames,
//! * [`lifetime`] — the unified energy/latency/lifetime comparison used by
//!   experiments E5 and E6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bmac;
pub mod lifetime;
pub mod metrics;
pub mod rtlink;
pub mod smac;
pub mod timesync;

pub use bmac::BMac;
pub use lifetime::{DutyCycledMac, Workload};
pub use metrics::MacMetrics;
pub use rtlink::{RtLink, RtLinkConfig, SlotAssignment, SlotRole, SlotSchedule};
pub use smac::SMac;
pub use timesync::{SyncConfig, TimeSync};
