//! Out-of-band time synchronization model.
//!
//! FireFly nodes carry a passive AM receiver tuned to a carrier-current
//! transmitter; every RT-Link cycle starts with a hardware sync pulse. The
//! residual error a node carries into a slot has two parts:
//!
//! 1. **detection jitter** — the pulse detector fires with a small random
//!    offset each resync, and
//! 2. **oscillator drift** — between resyncs, the node's 32 kHz crystal
//!    drifts at up to ±`drift_ppm` parts per million.
//!
//! The paper claims sub-150 µs jitter; experiment E7 samples this model and
//! reports the distribution.

use evm_sim::{SimDuration, SimRng, SimTime};

/// Parameters of the synchronization error model.
#[derive(Debug, Clone)]
pub struct SyncConfig {
    /// Standard deviation of the pulse-detection jitter, µs.
    pub detect_jitter_std_us: f64,
    /// Hard bound on the detection jitter (detector gate), µs.
    pub detect_jitter_max_us: f64,
    /// Maximum crystal drift magnitude, parts per million. Each node draws
    /// a fixed drift rate uniformly in ±this.
    pub drift_ppm: f64,
    /// Interval between hardware resync pulses.
    pub resync_interval: SimDuration,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig {
            detect_jitter_std_us: 20.0,
            detect_jitter_max_us: 60.0,
            drift_ppm: 40.0,
            // One RT-Link cycle of 32 × 10 ms slots by default.
            resync_interval: SimDuration::from_millis(320),
        }
    }
}

/// Per-node synchronization state.
///
/// # Example
///
/// ```
/// use evm_mac::{SyncConfig, TimeSync};
/// use evm_sim::{SimRng, SimTime};
///
/// let mut rng = SimRng::seed_from(3);
/// let mut sync = TimeSync::new(SyncConfig::default(), &mut rng);
/// sync.resync(SimTime::ZERO, &mut rng);
/// let err = sync.error_at(SimTime::from_millis(100));
/// assert!(err.abs() < 150.0, "sub-150us claim: {err}");
/// ```
#[derive(Debug, Clone)]
pub struct TimeSync {
    config: SyncConfig,
    /// This node's fixed drift rate, ppm (signed).
    drift_ppm: f64,
    /// Time of last resync and the error captured then, µs.
    last_resync: Option<(SimTime, f64)>,
}

impl TimeSync {
    /// Creates a node's sync state, drawing its fixed drift rate.
    #[must_use]
    pub fn new(config: SyncConfig, rng: &mut SimRng) -> Self {
        let drift_ppm = rng.range(-config.drift_ppm, config.drift_ppm);
        TimeSync {
            config,
            drift_ppm,
            last_resync: None,
        }
    }

    /// Handles a hardware sync pulse at `now`: the node's clock error
    /// collapses to a fresh detection-jitter draw.
    pub fn resync(&mut self, now: SimTime, rng: &mut SimRng) {
        let jitter = rng.normal_clamped(
            0.0,
            self.config.detect_jitter_std_us,
            -self.config.detect_jitter_max_us,
            self.config.detect_jitter_max_us,
        );
        self.last_resync = Some((now, jitter));
    }

    /// The node's clock error at time `t` (µs, signed): detection jitter
    /// from the last resync plus accumulated drift.
    ///
    /// # Panics
    ///
    /// Panics if the node was never resynced.
    #[must_use]
    pub fn error_at(&self, t: SimTime) -> f64 {
        let (at, jitter) = self.last_resync.expect("node never synchronized");
        let elapsed_us = t.saturating_since(at).as_micros() as f64;
        jitter + self.drift_ppm * 1e-6 * elapsed_us
    }

    /// Worst-case error bound at the end of a resync interval, µs.
    #[must_use]
    pub fn worst_case_error_us(&self) -> f64 {
        self.config.detect_jitter_max_us
            + self.config.drift_ppm * 1e-6 * self.config.resync_interval.as_micros() as f64
    }

    /// This node's drift rate, ppm.
    #[must_use]
    pub fn drift_ppm(&self) -> f64 {
        self.drift_ppm
    }

    /// The configured resync interval.
    #[must_use]
    pub fn resync_interval(&self) -> SimDuration {
        self.config.resync_interval
    }
}

/// Samples the *pairwise* slot misalignment between two synchronized nodes
/// at a random point within the resync interval — the quantity the RT-Link
/// guard times must absorb. Returns µs.
pub fn sample_pairwise_error(
    a: &TimeSync,
    b: &TimeSync,
    within: SimDuration,
    rng: &mut SimRng,
) -> f64 {
    let t = SimTime::ZERO
        + SimDuration::from_micros((rng.uniform() * within.as_micros() as f64) as u64);
    (a.error_at(t) - b.error_at(t)).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synced_node(seed: u64) -> (TimeSync, SimRng) {
        let mut rng = SimRng::seed_from(seed);
        let mut s = TimeSync::new(SyncConfig::default(), &mut rng);
        s.resync(SimTime::ZERO, &mut rng);
        (s, rng)
    }

    #[test]
    fn error_grows_with_time_at_drift_rate() {
        let (s, _) = synced_node(1);
        let e0 = s.error_at(SimTime::ZERO);
        let e1 = s.error_at(SimTime::from_secs(1));
        let drift_component = e1 - e0;
        // drift over 1 s = ppm µs.
        assert!((drift_component - s.drift_ppm()).abs() < 1e-9);
    }

    #[test]
    fn resync_collapses_error() {
        let (mut s, mut rng) = synced_node(2);
        let late = SimTime::from_secs(100);
        let drifted = s.error_at(late).abs();
        assert!(drifted > s.config.detect_jitter_max_us);
        s.resync(late, &mut rng);
        assert!(s.error_at(late).abs() <= s.config.detect_jitter_max_us);
    }

    #[test]
    fn worst_case_bound_holds_within_interval() {
        let (s, _) = synced_node(3);
        let bound = s.worst_case_error_us();
        let end = SimTime::ZERO + s.resync_interval();
        assert!(s.error_at(end).abs() <= bound + 1e-9);
    }

    #[test]
    fn sub_150us_within_cycle_default_config() {
        // With default parameters the worst case must respect the paper's
        // claim — this is a model-calibration check.
        let mut rng = SimRng::seed_from(4);
        for _ in 0..100 {
            let mut s = TimeSync::new(SyncConfig::default(), &mut rng);
            s.resync(SimTime::ZERO, &mut rng);
            assert!(s.worst_case_error_us() < 150.0);
        }
    }

    #[test]
    fn pairwise_error_is_bounded_by_sum_of_worst_cases() {
        let mut rng = SimRng::seed_from(5);
        let cfg = SyncConfig::default();
        let mut a = TimeSync::new(cfg.clone(), &mut rng);
        let mut b = TimeSync::new(cfg, &mut rng);
        a.resync(SimTime::ZERO, &mut rng);
        b.resync(SimTime::ZERO, &mut rng);
        let bound = a.worst_case_error_us() + b.worst_case_error_us();
        for _ in 0..1000 {
            let e = sample_pairwise_error(&a, &b, a.resync_interval(), &mut rng);
            assert!(e <= bound);
        }
    }

    #[test]
    #[should_panic(expected = "never synchronized")]
    fn unsynced_error_panics() {
        let mut rng = SimRng::seed_from(6);
        let s = TimeSync::new(SyncConfig::default(), &mut rng);
        let _ = s.error_at(SimTime::ZERO);
    }
}
