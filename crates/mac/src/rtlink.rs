//! RT-Link: time-synchronized TDMA link protocol.
//!
//! RT-Link divides time into fixed cycles of `slots_per_cycle` slots. Every
//! cycle begins with a hardware sync pulse (see [`crate::timesync`]); each
//! slot is owned by at most one transmitter per 2-hop neighborhood, which
//! makes scheduled traffic collision-free. Nodes sleep in all slots they
//! neither own nor subscribe to — this is where the energy win over
//! asynchronous MACs comes from.
//!
//! The schedule builder ([`SlotSchedule::for_flows`]) assigns slots to
//! communication flows in *pipeline order*, so a sensor→controller→actuator
//! chain completes within a single cycle — the property behind the paper's
//! objective 5 (control cycle ≤ 250 ms, latency ≤ 1/3 cycle).

use std::collections::{HashMap, HashSet};

use evm_netsim::{NodeId, Topology};
use evm_sim::{SimDuration, SimTime};

/// RT-Link cycle/slot parameters.
#[derive(Debug, Clone)]
pub struct RtLinkConfig {
    /// Length of one TDMA slot.
    pub slot_duration: SimDuration,
    /// Number of slots per cycle (including the sync slot at index 0).
    pub slots_per_cycle: usize,
    /// Guard interval at the start of each slot absorbing residual sync
    /// error (must exceed the worst-case pairwise misalignment).
    pub guard: SimDuration,
    /// Radio-on time to receive the out-of-band sync pulse each cycle.
    pub sync_listen: SimDuration,
}

impl Default for RtLinkConfig {
    fn default() -> Self {
        RtLinkConfig {
            slot_duration: SimDuration::from_millis(10),
            slots_per_cycle: 25,
            guard: SimDuration::from_micros(300),
            sync_listen: SimDuration::from_millis(1),
        }
    }
}

impl RtLinkConfig {
    /// Length of one full TDMA cycle.
    #[must_use]
    pub fn cycle_duration(&self) -> SimDuration {
        self.slot_duration * self.slots_per_cycle as u64
    }
}

/// Whether a node transmits or listens in a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotRole {
    /// The node owns the slot and may transmit.
    Owner,
    /// The node keeps its radio on to receive.
    Listener,
}

/// One slot's assignment: a single owner plus the set of subscribed
/// listeners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotAssignment {
    /// Slot index within the cycle (0 is reserved for sync).
    pub slot: usize,
    /// The transmitting node.
    pub owner: NodeId,
    /// Nodes that keep their radio on in this slot.
    pub listeners: Vec<NodeId>,
}

/// A communication flow to be scheduled: `src` transmits, `dst` (and any
/// `extra_listeners`, e.g. passive backup controllers) receive. `after`
/// optionally names an earlier flow (by index into the flow slice) whose
/// slot must strictly precede this one — that is how precedence chains are
/// pipelined within a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flow {
    /// Transmitting node.
    pub src: NodeId,
    /// Primary receiver.
    pub dst: NodeId,
    /// Additional subscribed receivers (passive observers).
    pub extra_listeners: Vec<NodeId>,
    /// Index of a flow that must be scheduled strictly earlier.
    pub after: Option<usize>,
}

impl Flow {
    /// A plain point-to-point flow.
    #[must_use]
    pub fn new(src: NodeId, dst: NodeId) -> Self {
        Flow {
            src,
            dst,
            extra_listeners: Vec::new(),
            after: None,
        }
    }

    /// Adds passive listeners.
    #[must_use]
    pub fn with_listeners(mut self, extra: Vec<NodeId>) -> Self {
        self.extra_listeners = extra;
        self
    }

    /// Requires this flow to be scheduled after flow `idx`.
    #[must_use]
    pub fn after(mut self, idx: usize) -> Self {
        self.after = Some(idx);
        self
    }

    fn all_listeners(&self) -> Vec<NodeId> {
        let mut v = vec![self.dst];
        v.extend(self.extra_listeners.iter().copied());
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Error produced when a flow set cannot be scheduled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// Ran out of slots in the cycle.
    OutOfSlots {
        /// Index of the flow that could not be placed.
        flow: usize,
    },
    /// A precedence edge references a later or missing flow.
    BadPrecedence {
        /// Index of the offending flow.
        flow: usize,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::OutOfSlots { flow } => {
                write!(f, "no collision-free slot available for flow {flow}")
            }
            ScheduleError::BadPrecedence { flow } => {
                write!(f, "flow {flow} has a forward or dangling precedence edge")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A full cycle's slot assignments.
#[derive(Debug, Clone, Default)]
pub struct SlotSchedule {
    /// Assignments per slot index; several assignments may share a slot
    /// under spatial reuse.
    slots: HashMap<usize, Vec<SlotAssignment>>,
    slots_per_cycle: usize,
    /// Configuration epoch this schedule belongs to. Epoch 0 is the
    /// setup-time schedule; a runtime reconfiguration installs a
    /// recomputed schedule tagged with the next epoch at a cycle
    /// boundary, so every transmission of one cycle provably comes from
    /// one epoch's timetable.
    epoch: u64,
}

impl SlotSchedule {
    /// Creates an empty schedule for a cycle of `slots_per_cycle` slots
    /// (epoch 0).
    #[must_use]
    pub fn new(slots_per_cycle: usize) -> Self {
        SlotSchedule {
            slots: HashMap::new(),
            slots_per_cycle,
            epoch: 0,
        }
    }

    /// Number of slots in the cycle.
    #[must_use]
    pub fn slots_per_cycle(&self) -> usize {
        self.slots_per_cycle
    }

    /// The configuration epoch this schedule was synthesized for.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Tags the schedule with the configuration epoch that produced it.
    #[must_use]
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Adds an assignment.
    ///
    /// # Panics
    ///
    /// Panics if the slot index is 0 (sync slot) or out of range.
    pub fn assign(&mut self, assignment: SlotAssignment) {
        assert!(assignment.slot != 0, "slot 0 is reserved for sync");
        assert!(
            assignment.slot < self.slots_per_cycle,
            "slot {} out of range",
            assignment.slot
        );
        self.slots
            .entry(assignment.slot)
            .or_default()
            .push(assignment);
    }

    /// All assignments in a slot.
    #[must_use]
    pub fn in_slot(&self, slot: usize) -> &[SlotAssignment] {
        self.slots.get(&slot).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The highest slot index carrying an assignment — i.e. how much of
    /// the cycle the schedule actually needs. `None` for an empty
    /// schedule. Capacity benches report this as the effective cycle
    /// length when more Virtual Components share one cycle.
    #[must_use]
    pub fn max_slot(&self) -> Option<usize> {
        self.slots.keys().copied().max()
    }

    /// Appends `n` dedicated transfer slots immediately after the last
    /// placed slot, all owned by `owner` with `listeners` receiving.
    /// Transfer slots carry bulk capsule/object fragments (live task
    /// migration) and are deliberately placed *after* the control
    /// pipeline, so a migration in progress never delays the
    /// sense→compute→actuate chain. Returns the reserved slot indices in
    /// ascending order. Calling again (e.g. for another Virtual
    /// Component) appends after the previous reservation.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::OutOfSlots`] if the cycle runs out of slots; the
    /// reported index is the reservation (0-based) that did not fit.
    pub fn reserve_transfer_slots(
        &mut self,
        owner: NodeId,
        listeners: &[NodeId],
        n: usize,
    ) -> Result<Vec<usize>, ScheduleError> {
        let first = self.max_slot().unwrap_or(0) + 1;
        let mut reserved = Vec::with_capacity(n);
        for i in 0..n {
            let slot = first + i;
            if slot >= self.slots_per_cycle {
                return Err(ScheduleError::OutOfSlots { flow: i });
            }
            self.assign(SlotAssignment {
                slot,
                owner,
                listeners: listeners.to_vec(),
            });
            reserved.push(slot);
        }
        Ok(reserved)
    }

    /// The slots in which `node` transmits.
    #[must_use]
    pub fn owned_slots(&self, node: NodeId) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .slots
            .iter()
            .filter(|(_, asgs)| asgs.iter().any(|a| a.owner == node))
            .map(|(&s, _)| s)
            .collect();
        v.sort_unstable();
        v
    }

    /// The slots in which `node` listens.
    #[must_use]
    pub fn listened_slots(&self, node: NodeId) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .slots
            .iter()
            .filter(|(_, asgs)| asgs.iter().any(|a| a.listeners.contains(&node)))
            .map(|(&s, _)| s)
            .collect();
        v.sort_unstable();
        v
    }

    /// The role of `node` in `slot`, if any.
    #[must_use]
    pub fn role_in(&self, node: NodeId, slot: usize) -> Option<SlotRole> {
        let asgs = self.in_slot(slot);
        if asgs.iter().any(|a| a.owner == node) {
            Some(SlotRole::Owner)
        } else if asgs.iter().any(|a| a.listeners.contains(&node)) {
            Some(SlotRole::Listener)
        } else {
            None
        }
    }

    /// Fraction of non-sync slots in which `node` has its radio on.
    #[must_use]
    pub fn duty_cycle_of(&self, node: NodeId) -> f64 {
        let active = (1..self.slots_per_cycle)
            .filter(|&s| self.role_in(node, s).is_some())
            .count();
        active as f64 / (self.slots_per_cycle - 1) as f64
    }

    /// Greedy pipeline-ordered schedule for `flows` on `topology`.
    ///
    /// Flows are placed in order; each takes the earliest slot that (a) is
    /// strictly after its `after` dependency and (b) does not conflict with
    /// any co-slotted assignment under the 2-hop interference rule.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::OutOfSlots`] if a flow cannot be placed,
    /// [`ScheduleError::BadPrecedence`] on a forward/dangling dependency.
    pub fn for_flows(
        config: &RtLinkConfig,
        topology: &Topology,
        flows: &[Flow],
    ) -> Result<SlotSchedule, ScheduleError> {
        Self::place_flows(config, topology, flows).map(|(schedule, _)| schedule)
    }

    /// Like [`SlotSchedule::for_flows`], but also reports the slot each
    /// flow was placed in (`result.1[i]` is the slot of `flows[i]`), so a
    /// caller synthesizing a schedule from a flow specification can map
    /// slots back to flow semantics without guessing.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::OutOfSlots`] if a flow cannot be placed,
    /// [`ScheduleError::BadPrecedence`] on a forward/dangling dependency.
    pub fn place_flows(
        config: &RtLinkConfig,
        topology: &Topology,
        flows: &[Flow],
    ) -> Result<(SlotSchedule, Vec<usize>), ScheduleError> {
        let mut schedule = SlotSchedule::new(config.slots_per_cycle);
        let mut placed_slot: Vec<usize> = Vec::with_capacity(flows.len());
        for (i, flow) in flows.iter().enumerate() {
            let min_slot = match flow.after {
                None => 1,
                Some(dep) if dep < i => placed_slot[dep] + 1,
                Some(_) => return Err(ScheduleError::BadPrecedence { flow: i }),
            };
            let listeners = flow.all_listeners();
            let mut chosen = None;
            for slot in min_slot..config.slots_per_cycle {
                if schedule
                    .in_slot(slot)
                    .iter()
                    .all(|a| !conflicts(topology, flow.src, &listeners, a))
                {
                    chosen = Some(slot);
                    break;
                }
            }
            let slot = chosen.ok_or(ScheduleError::OutOfSlots { flow: i })?;
            schedule.assign(SlotAssignment {
                slot,
                owner: flow.src,
                listeners,
            });
            placed_slot.push(slot);
        }
        Ok((schedule, placed_slot))
    }

    /// Like [`SlotSchedule::place_flows`], but with spatial reuse
    /// disabled: every flow gets its own slot, in flow order. This is the
    /// serialized upper bound a reused schedule is compared against — a
    /// clustered deployment's spatially-reused cycle must be strictly
    /// shorter than this while producing identical plant behavior.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::OutOfSlots`] if the cycle is too short for one
    /// slot per flow, [`ScheduleError::BadPrecedence`] on a
    /// forward/dangling dependency.
    pub fn place_flows_serial(
        config: &RtLinkConfig,
        flows: &[Flow],
    ) -> Result<(SlotSchedule, Vec<usize>), ScheduleError> {
        let mut schedule = SlotSchedule::new(config.slots_per_cycle);
        let mut placed_slot: Vec<usize> = Vec::with_capacity(flows.len());
        for (i, flow) in flows.iter().enumerate() {
            match flow.after {
                Some(dep) if dep >= i => return Err(ScheduleError::BadPrecedence { flow: i }),
                _ => {}
            }
            // One slot per flow keeps every `after` edge satisfied for
            // free: dependencies always occupy an earlier slot.
            let slot = i + 1;
            if slot >= config.slots_per_cycle {
                return Err(ScheduleError::OutOfSlots { flow: i });
            }
            schedule.assign(SlotAssignment {
                slot,
                owner: flow.src,
                listeners: flow.all_listeners(),
            });
            placed_slot.push(slot);
        }
        Ok((schedule, placed_slot))
    }

    /// Verifies the 2-hop interference-freedom invariant for every slot.
    #[must_use]
    pub fn is_interference_free(&self, topology: &Topology) -> bool {
        self.slots.values().all(|asgs| {
            asgs.iter().enumerate().all(|(i, a)| {
                asgs[i + 1..]
                    .iter()
                    .all(|b| !conflicts(topology, a.owner, &a.listeners, b))
            })
        })
    }
}

/// Two co-slotted transmissions conflict if the owners are within two hops
/// of each other, or either owner is a neighbor of any of the other's
/// listeners (hidden-terminal rule).
fn conflicts(
    topology: &Topology,
    owner: NodeId,
    listeners: &[NodeId],
    other: &SlotAssignment,
) -> bool {
    if owner == other.owner {
        return true;
    }
    let two_hop: HashSet<NodeId> = topology.two_hop_set(owner);
    if two_hop.contains(&other.owner) {
        return true;
    }
    if listeners
        .iter()
        .any(|l| topology.are_neighbors(*l, other.owner))
    {
        return true;
    }
    if other
        .listeners
        .iter()
        .any(|l| topology.are_neighbors(*l, owner))
    {
        return true;
    }
    false
}

/// The RT-Link protocol clock: maps simulation time to cycles and slots.
#[derive(Debug, Clone)]
pub struct RtLink {
    config: RtLinkConfig,
}

impl RtLink {
    /// Creates the protocol clock.
    #[must_use]
    pub fn new(config: RtLinkConfig) -> Self {
        RtLink { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &RtLinkConfig {
        &self.config
    }

    /// `(cycle, slot)` containing time `t`.
    #[must_use]
    pub fn slot_at(&self, t: SimTime) -> (u64, usize) {
        let cyc = self.config.cycle_duration().as_micros();
        let us = t.as_micros();
        let cycle = us / cyc;
        let slot = (us % cyc) / self.config.slot_duration.as_micros();
        (cycle, slot as usize)
    }

    /// Start time of `(cycle, slot)`.
    #[must_use]
    pub fn slot_start(&self, cycle: u64, slot: usize) -> SimTime {
        assert!(slot < self.config.slots_per_cycle, "slot out of range");
        SimTime::from_micros(
            cycle * self.config.cycle_duration().as_micros()
                + slot as u64 * self.config.slot_duration.as_micros(),
        )
    }

    /// The first start time of a slot owned by `node`, strictly after `t`.
    /// Returns `None` if the node owns no slots.
    #[must_use]
    pub fn next_owned_slot(
        &self,
        schedule: &SlotSchedule,
        node: NodeId,
        t: SimTime,
    ) -> Option<SimTime> {
        let owned = schedule.owned_slots(node);
        if owned.is_empty() {
            return None;
        }
        let (cycle, _) = self.slot_at(t);
        for c in cycle..=cycle + 1 {
            for &s in &owned {
                let start = self.slot_start(c, s);
                if start > t {
                    return Some(start);
                }
            }
        }
        None
    }

    /// Per-cycle radio-on time of `node` under `schedule`: sync listen +
    /// owned slots (TX for the frame airtime, bounded by the slot) +
    /// listened slots (RX for the whole slot, conservatively).
    #[must_use]
    pub fn radio_on_per_cycle(&self, schedule: &SlotSchedule, node: NodeId) -> SimDuration {
        let owned = schedule.owned_slots(node).len() as u64;
        let listened = schedule.listened_slots(node).len() as u64;
        self.config.sync_listen
            + self.config.slot_duration * owned
            + self.config.slot_duration * listened
    }
}

impl Default for RtLink {
    fn default() -> Self {
        RtLink::new(RtLinkConfig::default())
    }
}

impl RtLink {
    /// Below this provisioned duty cycle, nodes sleep whole TDMA cycles
    /// (the FireFly low-duty mode) instead of waking for every sync pulse.
    pub const CYCLE_SKIP_KNEE: f64 = 0.02;
}

impl crate::lifetime::DutyCycledMac for RtLink {
    fn name(&self) -> &'static str {
        "rt-link"
    }

    /// Analytic average current at a provisioned duty cycle.
    ///
    /// RT-Link's structural advantage: a provisioned slot that carries no
    /// frame is almost free. Owners sleep empty slots entirely; listeners
    /// pay only a short *detect window* (guard + PHY header) before
    /// shutting the radio down. Cost therefore splits into a fixed sync
    /// term, a per-provisioned-listen-slot detect term, and actual traffic.
    ///
    /// Below [`RtLink::CYCLE_SKIP_KNEE`] the node sleeps whole cycles and
    /// re-acquires the AM sync on wake (the FireFly low-duty mode), so the
    /// fixed sync/detect cost scales down with the requested duty instead
    /// of flooring out.
    fn average_current_ma(&self, duty: f64, wl: &crate::lifetime::Workload) -> f64 {
        assert!(duty > 0.0 && duty <= 1.0, "duty out of (0,1]: {duty}");
        let p = crate::lifetime::power();
        let cycle = self.config.cycle_duration().as_secs_f64();
        let data_slots = (self.config.slots_per_cycle - 1) as f64;
        let t_data = wl.data_airtime().as_secs_f64();
        // Whole-cycle sleeping below the knee.
        let wake_fraction = (duty / Self::CYCLE_SKIP_KNEE).min(1.0);

        // Provisioned slots at this duty cycle, split between TX and RX,
        // with at least one of each and grown if the offered load needs it.
        let k = (duty * data_slots).round().max(2.0);
        let mut k_tx = (k / 2.0).floor().max(1.0);
        let k_rx = (k - k_tx).max(1.0);
        let frames_per_cycle_needed = wl.tx_per_sec * cycle;
        if frames_per_cycle_needed > k_tx {
            k_tx = frames_per_cycle_needed.ceil();
        }

        // Fixed: sync pulse reception every *awake* cycle.
        let sync = p.rx_ma * self.config.sync_listen.as_secs_f64() / cycle * wake_fraction;
        // Listeners: detect window per provisioned RX slot in awake cycles.
        let detect = self.config.guard.as_secs_f64()
            + evm_netsim::frame::airtime_for_bytes(evm_netsim::PHY_HEADER_BYTES).as_secs_f64();
        let listen = p.rx_ma * k_rx * detect / cycle * wake_fraction;
        // Traffic: actual airtime only (owners sleep empty slots).
        let tx = wl.tx_per_sec * t_data * p.tx_ma
            + wl.tx_per_sec * self.config.guard.as_secs_f64() * p.idle_ma;
        let rx = wl.rx_per_sec * t_data * p.rx_ma;
        let active_frac = (self.config.sync_listen.as_secs_f64() + k_rx * detect) / cycle
            * wake_fraction
            + wl.tx_per_sec * t_data
            + wl.rx_per_sec * t_data;
        let sleep = p.sleep_ma * (1.0 - active_frac).max(0.0);
        let _ = k_tx; // capacity provisioning affects latency, not idle energy
        sync + listen + tx + rx + sleep
    }

    /// Average wait for the next owned slot plus the frame airtime;
    /// whole-cycle sleeping below the knee stretches the wait
    /// proportionally.
    fn delivery_latency(&self, duty: f64, wl: &crate::lifetime::Workload) -> evm_sim::SimDuration {
        assert!(duty > 0.0 && duty <= 1.0, "duty out of (0,1]: {duty}");
        let data_slots = (self.config.slots_per_cycle - 1) as f64;
        let k = (duty * data_slots).round().max(2.0);
        let k_tx = (k / 2.0).floor().max(1.0);
        let cycle = self.config.cycle_duration();
        let stretch = (Self::CYCLE_SKIP_KNEE / duty).max(1.0);
        cycle.mul_f64(stretch / (2.0 * k_tx)) + wl.data_airtime()
    }

    /// Scheduled TDMA is collision-free.
    fn delivery_ratio(&self, _duty: f64, _wl: &crate::lifetime::Workload) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evm_netsim::{Channel, ChannelConfig, NodeInfo, NodeKind, Position};
    use evm_sim::SimRng;

    fn star_topology() -> Topology {
        let mut ch = Channel::new(ChannelConfig::default(), SimRng::seed_from(1));
        Topology::star(
            6,
            15.0,
            &[NodeKind::Sensor, NodeKind::Controller, NodeKind::Actuator],
            &mut ch,
        )
    }

    /// Schedules are born in epoch 0 and carry whatever epoch the
    /// reconfiguration plane tags them with; the tag never disturbs the
    /// assignments.
    #[test]
    fn epoch_tag_rides_the_schedule() {
        let schedule = SlotSchedule::new(8);
        assert_eq!(schedule.epoch(), 0);
        let mut tagged = schedule.with_epoch(3);
        assert_eq!(tagged.epoch(), 3);
        tagged.assign(SlotAssignment {
            slot: 1,
            owner: NodeId(1),
            listeners: vec![NodeId(2)],
        });
        assert_eq!(tagged.epoch(), 3);
        assert_eq!(tagged.in_slot(1).len(), 1);
    }

    /// Two distant clusters that allow spatial slot reuse.
    fn two_clusters() -> Topology {
        let mut ch = Channel::new(ChannelConfig::default(), SimRng::seed_from(2));
        let mut nodes = Vec::new();
        for i in 0..3u16 {
            nodes.push(NodeInfo::new(
                NodeId(i),
                NodeKind::Controller,
                Position::new(i as f64 * 10.0, 0.0),
                format!("a{i}"),
            ));
        }
        for i in 0..3u16 {
            nodes.push(NodeInfo::new(
                NodeId(10 + i),
                NodeKind::Controller,
                Position::new(2_000.0 + i as f64 * 10.0, 0.0),
                format!("b{i}"),
            ));
        }
        Topology::derive(nodes, &mut ch)
    }

    #[test]
    fn clock_maps_time_to_slots() {
        let rt = RtLink::default();
        assert_eq!(rt.slot_at(SimTime::ZERO), (0, 0));
        assert_eq!(rt.slot_at(SimTime::from_millis(10)), (0, 1));
        assert_eq!(rt.slot_at(SimTime::from_millis(249)), (0, 24));
        assert_eq!(rt.slot_at(SimTime::from_millis(250)), (1, 0));
        assert_eq!(rt.slot_start(1, 0), SimTime::from_millis(250));
        assert_eq!(rt.slot_start(0, 3), SimTime::from_millis(30));
    }

    #[test]
    fn pipeline_order_within_cycle() {
        let topo = star_topology();
        let cfg = RtLinkConfig::default();
        // sensor(1) -> controller(2) -> actuator(3), with the gateway
        // listening in on everything.
        let flows = vec![
            Flow::new(NodeId(1), NodeId(2)),
            Flow::new(NodeId(2), NodeId(3)).after(0),
        ];
        let sched = SlotSchedule::for_flows(&cfg, &topo, &flows).unwrap();
        let s1 = sched.owned_slots(NodeId(1))[0];
        let s2 = sched.owned_slots(NodeId(2))[0];
        assert!(s1 < s2, "pipeline violated: {s1} !< {s2}");
        assert!(sched.is_interference_free(&topo));
    }

    #[test]
    fn single_cluster_flows_get_distinct_slots() {
        let topo = star_topology();
        let cfg = RtLinkConfig::default();
        let flows: Vec<Flow> = (1..=6)
            .map(|i| Flow::new(NodeId(i as u16), NodeId::GATEWAY))
            .collect();
        let sched = SlotSchedule::for_flows(&cfg, &topo, &flows).unwrap();
        let mut used: Vec<usize> = (1..=6)
            .flat_map(|i| sched.owned_slots(NodeId(i as u16)))
            .collect();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used.len(), 6, "all-in-range flows must not share slots");
        assert!(sched.is_interference_free(&topo));
    }

    #[test]
    fn distant_clusters_reuse_slots() {
        let topo = two_clusters();
        let cfg = RtLinkConfig::default();
        let flows = vec![
            Flow::new(NodeId(0), NodeId(1)),
            Flow::new(NodeId(10), NodeId(11)),
        ];
        let sched = SlotSchedule::for_flows(&cfg, &topo, &flows).unwrap();
        assert_eq!(
            sched.owned_slots(NodeId(0)),
            sched.owned_slots(NodeId(10)),
            "distant clusters should share slot 1"
        );
        assert!(sched.is_interference_free(&topo));
    }

    #[test]
    fn serial_placement_disables_spatial_reuse() {
        let topo = two_clusters();
        let cfg = RtLinkConfig::default();
        let flows = vec![
            Flow::new(NodeId(0), NodeId(1)),
            Flow::new(NodeId(10), NodeId(11)),
            Flow::new(NodeId(1), NodeId(2)).after(0),
        ];
        let (reused, _) = SlotSchedule::place_flows(&cfg, &topo, &flows).unwrap();
        let (serial, placed) = SlotSchedule::place_flows_serial(&cfg, &flows).unwrap();
        // Serialized: one slot per flow in flow order.
        assert_eq!(placed, vec![1, 2, 3]);
        assert!(serial.is_interference_free(&topo));
        // The distant clusters reuse slot 1 under the spatial placer, so
        // the reused cycle is strictly shorter.
        assert!(reused.max_slot().unwrap() < serial.max_slot().unwrap());
    }

    #[test]
    fn serial_placement_reports_out_of_slots() {
        let cfg = RtLinkConfig {
            slots_per_cycle: 3,
            ..RtLinkConfig::default()
        };
        let flows: Vec<Flow> = (1..=3)
            .map(|i| Flow::new(NodeId(i as u16), NodeId::GATEWAY))
            .collect();
        let err = SlotSchedule::place_flows_serial(&cfg, &flows).unwrap_err();
        assert_eq!(err, ScheduleError::OutOfSlots { flow: 2 });
        let bad = vec![Flow::new(NodeId(1), NodeId(2)).after(0)];
        let err = SlotSchedule::place_flows_serial(&cfg, &bad).unwrap_err();
        assert_eq!(err, ScheduleError::BadPrecedence { flow: 0 });
    }

    #[test]
    fn transfer_slots_append_after_pipeline() {
        let topo = star_topology();
        let cfg = RtLinkConfig::default();
        let flows = vec![
            Flow::new(NodeId(1), NodeId::GATEWAY),
            Flow::new(NodeId(2), NodeId::GATEWAY).after(0),
        ];
        let (mut schedule, placed) = SlotSchedule::place_flows(&cfg, &topo, &flows).unwrap();
        let pipeline_end = *placed.iter().max().unwrap();
        let reserved = schedule
            .reserve_transfer_slots(NodeId(1), &[NodeId(2), NodeId(3)], 3)
            .unwrap();
        assert_eq!(reserved.len(), 3);
        assert!(reserved[0] > pipeline_end, "transfers follow the pipeline");
        assert_eq!(reserved[2], reserved[0] + 2, "contiguous reservation");
        for &s in &reserved {
            assert_eq!(schedule.in_slot(s)[0].owner, NodeId(1));
            assert!(schedule.in_slot(s)[0].listeners.contains(&NodeId(3)));
        }
        // A second reservation (another VC) appends after the first.
        let more = schedule
            .reserve_transfer_slots(NodeId(2), &[NodeId(1)], 1)
            .unwrap();
        assert_eq!(more, vec![reserved[2] + 1]);
    }

    #[test]
    fn transfer_reservation_reports_overflow() {
        let mut schedule = SlotSchedule::new(4);
        schedule.assign(SlotAssignment {
            slot: 2,
            owner: NodeId(1),
            listeners: vec![NodeId(2)],
        });
        let err = schedule
            .reserve_transfer_slots(NodeId(1), &[NodeId(2)], 2)
            .unwrap_err();
        assert_eq!(err, ScheduleError::OutOfSlots { flow: 1 });
    }

    #[test]
    fn out_of_slots_is_reported() {
        let topo = star_topology();
        let cfg = RtLinkConfig {
            slots_per_cycle: 3, // slots 1 and 2 usable
            ..RtLinkConfig::default()
        };
        let flows: Vec<Flow> = (1..=3)
            .map(|i| Flow::new(NodeId(i as u16), NodeId::GATEWAY))
            .collect();
        let err = SlotSchedule::for_flows(&cfg, &topo, &flows).unwrap_err();
        assert_eq!(err, ScheduleError::OutOfSlots { flow: 2 });
    }

    #[test]
    fn forward_precedence_rejected() {
        let topo = star_topology();
        let cfg = RtLinkConfig::default();
        let flows = vec![Flow::new(NodeId(1), NodeId(2)).after(5)];
        let err = SlotSchedule::for_flows(&cfg, &topo, &flows).unwrap_err();
        assert_eq!(err, ScheduleError::BadPrecedence { flow: 0 });
    }

    #[test]
    fn duty_cycle_and_energy_accounting() {
        let topo = star_topology();
        let cfg = RtLinkConfig::default();
        let flows = vec![
            Flow::new(NodeId(1), NodeId(2)),
            Flow::new(NodeId(2), NodeId(3)).after(0),
        ];
        let sched = SlotSchedule::for_flows(&cfg, &topo, &flows).unwrap();
        // Node 2 owns one slot and listens in one.
        assert_eq!(sched.owned_slots(NodeId(2)).len(), 1);
        assert_eq!(sched.listened_slots(NodeId(2)).len(), 1);
        let dc = sched.duty_cycle_of(NodeId(2));
        assert!((dc - 2.0 / 24.0).abs() < 1e-12);
        let rt = RtLink::new(cfg.clone());
        let on = rt.radio_on_per_cycle(&sched, NodeId(2));
        assert_eq!(on, cfg.sync_listen + cfg.slot_duration * 2);
        // A node with no role only listens for sync.
        assert_eq!(rt.radio_on_per_cycle(&sched, NodeId(5)), cfg.sync_listen);
    }

    #[test]
    fn next_owned_slot_wraps_to_next_cycle() {
        let topo = star_topology();
        let cfg = RtLinkConfig::default();
        let flows = vec![Flow::new(NodeId(1), NodeId(2))];
        let sched = SlotSchedule::for_flows(&cfg, &topo, &flows).unwrap();
        let rt = RtLink::new(cfg);
        let slot = sched.owned_slots(NodeId(1))[0];
        let first = rt
            .next_owned_slot(&sched, NodeId(1), SimTime::ZERO)
            .unwrap();
        assert_eq!(first, rt.slot_start(0, slot));
        let after = rt.next_owned_slot(&sched, NodeId(1), first).unwrap();
        assert_eq!(after, rt.slot_start(1, slot));
        assert_eq!(rt.next_owned_slot(&sched, NodeId(4), SimTime::ZERO), None);
    }

    #[test]
    #[should_panic(expected = "reserved for sync")]
    fn sync_slot_is_protected() {
        let mut sched = SlotSchedule::new(25);
        sched.assign(SlotAssignment {
            slot: 0,
            owner: NodeId(1),
            listeners: vec![],
        });
    }
}
