//! Unified energy / latency / lifetime comparison across MAC protocols.
//!
//! This is the harness behind experiments **E5** (lifetime vs duty cycle)
//! and **E6** (lifetime & latency vs event rate), reproducing the paper's
//! §2.1 claim that *"RT-Link outperforms asynchronous protocols such as
//! B-MAC and loosely synchronous protocols such as S-MAC across all duty
//! cycles and event rates."*
//!
//! Each protocol implements [`DutyCycledMac`]: an analytic average-current
//! and latency model parameterized by a provisioned duty cycle and a
//! traffic [`Workload`]. The models use the same CC2420 power numbers so
//! differences are purely protocol-structural:
//!
//! * **RT-Link** pays a fixed sync cost plus *actual traffic only* — owners
//!   sleep empty slots after the guard time and listeners shut down after a
//!   short detect window, so idle provisioned capacity is nearly free.
//! * **B-MAC** pays channel sampling at the duty rate plus a full
//!   check-interval-long preamble per transmitted packet — cheap idle, very
//!   expensive traffic at low duty.
//! * **S-MAC** pays idle listening for the whole listen window of every
//!   frame regardless of traffic.

use evm_netsim::{Battery, RadioPowerModel};
use evm_sim::SimDuration;

use crate::metrics::MacMetrics;

/// Traffic pattern offered to a MAC protocol, per node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Packets transmitted per second by this node.
    pub tx_per_sec: f64,
    /// Packets received per second by this node.
    pub rx_per_sec: f64,
    /// MAC payload per packet, bytes.
    pub payload_bytes: usize,
    /// Number of contending nodes in range (drives collision estimates for
    /// contention MACs).
    pub contenders: usize,
}

impl Workload {
    /// A symmetric periodic-reporting workload: every node sends and
    /// receives `per_min` packets per minute of `payload_bytes` bytes.
    #[must_use]
    pub fn periodic(per_min: f64, payload_bytes: usize, contenders: usize) -> Self {
        Workload {
            tx_per_sec: per_min / 60.0,
            rx_per_sec: per_min / 60.0,
            payload_bytes,
            contenders,
        }
    }

    /// Airtime of one data frame under this workload.
    #[must_use]
    pub fn data_airtime(&self) -> SimDuration {
        evm_netsim::frame::airtime_for_bytes(
            evm_netsim::PHY_HEADER_BYTES + evm_netsim::frame::MAC_HEADER_BYTES + self.payload_bytes,
        )
    }
}

/// A MAC protocol with an analytic energy/latency model parameterized by a
/// provisioned duty cycle.
pub trait DutyCycledMac {
    /// Protocol name for tables.
    fn name(&self) -> &'static str;

    /// Average current in mA at provisioned duty cycle `duty` under
    /// workload `wl`.
    fn average_current_ma(&self, duty: f64, wl: &Workload) -> f64;

    /// Expected one-hop delivery latency.
    fn delivery_latency(&self, duty: f64, wl: &Workload) -> SimDuration;

    /// Expected delivery ratio (contention/collision losses only).
    fn delivery_ratio(&self, _duty: f64, _wl: &Workload) -> f64 {
        1.0
    }

    /// Full metrics row at one operating point, with lifetime projected on
    /// the given battery.
    fn metrics(&self, duty: f64, wl: &Workload, battery: &Battery) -> MacMetrics {
        let i = self.average_current_ma(duty, wl);
        MacMetrics {
            protocol: self.name(),
            avg_current_ma: i,
            lifetime_years: battery.lifetime_years_at(i),
            latency: self.delivery_latency(duty, wl),
            delivery_ratio: self.delivery_ratio(duty, wl),
        }
    }
}

/// Shares the power model across the three protocol implementations.
pub(crate) fn power() -> RadioPowerModel {
    RadioPowerModel::cc2420()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BMac, RtLink, SMac};

    fn protocols() -> Vec<Box<dyn DutyCycledMac>> {
        vec![
            Box::new(RtLink::default()),
            Box::new(BMac::default()),
            Box::new(SMac::default()),
        ]
    }

    #[test]
    fn workload_constructor() {
        let wl = Workload::periodic(60.0, 32, 6);
        assert!((wl.tx_per_sec - 1.0).abs() < 1e-12);
        assert_eq!(wl.payload_bytes, 32);
        assert!(wl.data_airtime().as_micros() > 0);
    }

    /// The paper's §2.1 claim, as a test: RT-Link draws less current than
    /// B-MAC and S-MAC across the whole duty-cycle range at a typical
    /// reporting rate.
    #[test]
    fn rtlink_wins_across_duty_cycles() {
        let wl = Workload::periodic(12.0, 32, 6);
        let rt = RtLink::default();
        let bm = BMac::default();
        let sm = SMac::default();
        for duty_pct in [1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0] {
            let d = duty_pct / 100.0;
            let i_rt = rt.average_current_ma(d, &wl);
            let i_bm = bm.average_current_ma(d, &wl);
            let i_sm = sm.average_current_ma(d, &wl);
            assert!(
                i_rt < i_bm && i_rt < i_sm,
                "duty {duty_pct}%: rt {i_rt:.4} bmac {i_bm:.4} smac {i_sm:.4}"
            );
        }
    }

    /// ... and across event rates (at 5% provisioned duty).
    #[test]
    fn rtlink_wins_across_event_rates() {
        let rt = RtLink::default();
        let bm = BMac::default();
        let sm = SMac::default();
        for per_min in [0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 120.0] {
            let wl = Workload::periodic(per_min, 32, 6);
            let i_rt = rt.average_current_ma(0.05, &wl);
            let i_bm = bm.average_current_ma(0.05, &wl);
            let i_sm = sm.average_current_ma(0.05, &wl);
            assert!(
                i_rt < i_bm && i_rt < i_sm,
                "rate {per_min}/min: rt {i_rt:.4} bmac {i_bm:.4} smac {i_sm:.4}"
            );
        }
    }

    #[test]
    fn all_protocols_produce_finite_metrics() {
        let wl = Workload::periodic(6.0, 32, 6);
        let battery = Battery::two_aa();
        for p in protocols() {
            let m = p.metrics(0.05, &wl, &battery);
            assert!(m.avg_current_ma > 0.0 && m.avg_current_ma.is_finite());
            assert!(m.lifetime_years > 0.0 && m.lifetime_years.is_finite());
            assert!((0.0..=1.0).contains(&m.delivery_ratio));
        }
    }

    /// FireFly platform claim: ~1.8-year lifetime at 5 % duty cycle with a
    /// low-rate monitoring workload. We accept the right order of magnitude
    /// (1–3 years) since battery assumptions differ.
    #[test]
    fn rtlink_lifetime_at_5pct_duty_is_order_years() {
        let wl = Workload::periodic(2.0, 16, 6);
        let battery = Battery::two_aa();
        let m = RtLink::default().metrics(0.05, &wl, &battery);
        assert!(
            m.lifetime_years > 1.0 && m.lifetime_years < 4.0,
            "lifetime {:.2} years",
            m.lifetime_years
        );
    }
}
