//! B-MAC: low-power listening with preamble sampling (Polastre et al.,
//! SenSys 2004).
//!
//! Receivers wake every *check interval* and sample the channel for a short
//! time; senders prepend a preamble **at least one check interval long** so
//! that any receiver is guaranteed to sample it. Idle cost is low (brief
//! periodic samples) but every transmission pays the full-length preamble —
//! the structural weakness RT-Link's synchronized slots avoid.

use evm_sim::SimDuration;

use crate::lifetime::{power, DutyCycledMac, Workload};

/// B-MAC model parameters.
#[derive(Debug, Clone)]
pub struct BMac {
    /// Radio-on time of one channel sample.
    pub sample_time: SimDuration,
    /// CSMA vulnerable window factor for the collision estimate.
    pub csma_factor: f64,
}

impl Default for BMac {
    fn default() -> Self {
        BMac {
            sample_time: SimDuration::from_micros(2_500),
            csma_factor: 0.5,
        }
    }
}

impl BMac {
    /// The check interval implied by a sampling duty cycle:
    /// `t_ci = t_sample / duty`.
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `(0, 1]`.
    #[must_use]
    pub fn check_interval(&self, duty: f64) -> SimDuration {
        assert!(duty > 0.0 && duty <= 1.0, "duty out of (0,1]: {duty}");
        SimDuration::from_secs_f64(self.sample_time.as_secs_f64() / duty)
    }
}

impl DutyCycledMac for BMac {
    fn name(&self) -> &'static str {
        "b-mac"
    }

    fn average_current_ma(&self, duty: f64, wl: &Workload) -> f64 {
        let p = power();
        let t_ci = self.check_interval(duty).as_secs_f64();
        let t_data = wl.data_airtime().as_secs_f64();

        // Periodic channel sampling.
        let sampling = p.rx_ma * duty;
        // Each TX pays a full check-interval preamble plus the data frame.
        let tx = wl.tx_per_sec * (t_ci + t_data) * p.tx_ma;
        // Each RX wakes mid-preamble on average: half the preamble + data.
        let rx = wl.rx_per_sec * (t_ci / 2.0 + t_data) * p.rx_ma;
        let active_frac =
            duty + wl.tx_per_sec * (t_ci + t_data) + wl.rx_per_sec * (t_ci / 2.0 + t_data);
        let sleep = p.sleep_ma * (1.0 - active_frac).max(0.0);
        sampling + tx + rx + sleep
    }

    fn delivery_latency(&self, duty: f64, wl: &Workload) -> SimDuration {
        // The sender transmits immediately; the receiver is guaranteed to
        // catch the preamble within one check interval.
        self.check_interval(duty) + wl.data_airtime()
    }

    fn delivery_ratio(&self, duty: f64, wl: &Workload) -> f64 {
        // Unslotted CSMA: collisions when two senders' preambles overlap.
        let t_vuln = self.check_interval(duty).as_secs_f64() + wl.data_airtime().as_secs_f64();
        let lambda = wl.contenders as f64 * wl.tx_per_sec;
        (-self.csma_factor * 2.0 * lambda * t_vuln).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_interval_from_duty() {
        let b = BMac::default();
        assert_eq!(b.check_interval(0.05).as_micros(), 50_000);
        assert_eq!(b.check_interval(1.0).as_micros(), 2_500);
    }

    #[test]
    fn idle_cost_scales_with_duty() {
        let b = BMac::default();
        let idle = Workload {
            tx_per_sec: 0.0,
            rx_per_sec: 0.0,
            payload_bytes: 0,
            contenders: 0,
        };
        let low = b.average_current_ma(0.01, &idle);
        let high = b.average_current_ma(0.5, &idle);
        assert!(low < high);
        // Idle current at duty d is ~ d * I_rx.
        assert!((high - 19.7 * 0.5).abs() < 0.05, "got {high}");
    }

    #[test]
    fn tx_cost_explodes_at_low_duty() {
        // The preamble-length penalty: at a fixed rate, lower duty means a
        // longer preamble per packet, so *lower* duty can cost more energy.
        let b = BMac::default();
        let wl = Workload::periodic(30.0, 32, 4);
        let at_low = b.average_current_ma(0.005, &wl);
        let at_mid = b.average_current_ma(0.05, &wl);
        assert!(at_low > at_mid, "low {at_low} mid {at_mid}");
    }

    #[test]
    fn latency_tracks_check_interval() {
        let b = BMac::default();
        let wl = Workload::periodic(6.0, 32, 4);
        let lat = b.delivery_latency(0.05, &wl);
        assert!(lat >= SimDuration::from_millis(50));
        assert!(b.delivery_latency(0.5, &wl) < lat);
    }

    #[test]
    fn delivery_ratio_degrades_with_contention() {
        let b = BMac::default();
        let light = Workload::periodic(1.0, 32, 2);
        let heavy = Workload::periodic(120.0, 32, 20);
        assert!(b.delivery_ratio(0.05, &light) > b.delivery_ratio(0.05, &heavy));
        assert!(b.delivery_ratio(0.05, &light) <= 1.0);
    }

    #[test]
    #[should_panic(expected = "duty out of")]
    fn zero_duty_panics() {
        let _ = BMac::default().check_interval(0.0);
    }
}
