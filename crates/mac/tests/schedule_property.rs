//! Property suite for the RT-Link slot scheduler over randomized
//! multi-hop topologies.
//!
//! 200 SimRng-driven line / grid / clustered layouts (the shapes the
//! runtime's `TopologySpec` generators produce, with jittered spacing and
//! node counts) each get a randomized pipeline-chained flow set. For every
//! case the greedy spatial placer must
//!
//! 1. satisfy [`SlotSchedule::is_interference_free`] under the 2-hop rule,
//! 2. respect every `after` precedence edge, and
//! 3. never need more slots than the serialized upper bound
//!    ([`SlotSchedule::place_flows_serial`]) — spatial reuse only ever
//!    shortens the cycle.
//!
//! No external property-testing dependency: the loop is a plain
//! deterministic `SimRng` sweep, like the rest of the workspace.

use evm_mac::rtlink::{Flow, RtLinkConfig, SlotSchedule};
use evm_netsim::{Channel, ChannelConfig, NodeId, NodeInfo, NodeKind, Position, Topology};
use evm_sim::SimRng;

fn channel(seed: u64) -> Channel {
    Channel::new(ChannelConfig::default(), SimRng::seed_from(seed))
}

fn derive(positions: Vec<Position>, seed: u64) -> Topology {
    let infos = positions
        .into_iter()
        .enumerate()
        .map(|(i, p)| NodeInfo::new(NodeId(i as u16), NodeKind::Relay, p, format!("n{i}")))
        .collect();
    Topology::derive(infos, &mut channel(seed))
}

/// A chain of nodes with jittered spacing: adjacency only between close
/// neighbors, so 2-hop interference sets are small and slots can be
/// reused along the line.
fn random_line(rng: &mut SimRng) -> Topology {
    let n = 4 + rng.index(9); // 4..=12 nodes
    let spacing = rng.range(35.0, 45.0);
    let positions = (0..n)
        .map(|i| Position::new(i as f64 * spacing, rng.range(-2.0, 2.0)))
        .collect();
    derive(positions, 100 + n as u64)
}

/// A w x h lattice with jittered spacing (sometimes 8-connected when the
/// diagonal is in range, sometimes 4-connected).
fn random_grid(rng: &mut SimRng) -> Topology {
    let w = 2 + rng.index(3); // 2..=4
    let h = 2 + rng.index(3);
    let spacing = rng.range(38.0, 55.0);
    let positions = (0..w * h)
        .map(|i| Position::new((i % w) as f64 * spacing, (i / w) as f64 * spacing))
        .collect();
    derive(positions, 200 + (w * 10 + h) as u64)
}

/// k distant clusters around a central node, each behind a 2-relay chain:
/// intra-cluster traffic in different clusters can share slots.
fn random_clustered(rng: &mut SimRng) -> Topology {
    let k = 2 + rng.index(3); // 2..=4 clusters
    let members = 2 + rng.index(3); // 2..=4 nodes per cluster
    let hop = rng.range(36.0, 42.0);
    let mut positions = vec![Position::new(0.0, 0.0)];
    for c in 0..k {
        let angle = 2.0 * std::f64::consts::PI * c as f64 / k as f64;
        let (dx, dy) = (angle.cos(), angle.sin());
        positions.push(Position::new(hop * dx, hop * dy));
        positions.push(Position::new(2.0 * hop * dx, 2.0 * hop * dy));
        for m in 0..members {
            let theta = 2.0 * std::f64::consts::PI * m as f64 / members as f64;
            positions.push(Position::new(
                3.0 * hop * dx + 2.0 * theta.cos(),
                3.0 * hop * dy + 2.0 * theta.sin(),
            ));
        }
    }
    derive(positions, 300 + (k * 10 + members) as u64)
}

/// A randomized flow set: random (src, dst) pairs, random listener
/// subsets, and a sprinkling of backward `after` edges (always valid:
/// they reference earlier flows only).
fn random_flows(rng: &mut SimRng, topology: &Topology) -> Vec<Flow> {
    let ids: Vec<NodeId> = topology.nodes().iter().map(|n| n.id).collect();
    let n_flows = 2 + rng.index(ids.len().min(10));
    (0..n_flows)
        .map(|i| {
            let src = ids[rng.index(ids.len())];
            let dst = loop {
                let d = ids[rng.index(ids.len())];
                if d != src {
                    break d;
                }
            };
            let mut listeners = Vec::new();
            for &l in &ids {
                if l != src && l != dst && rng.chance(0.2) {
                    listeners.push(l);
                }
            }
            let mut flow = Flow::new(src, dst).with_listeners(listeners);
            if i > 0 && rng.chance(0.5) {
                flow = flow.after(rng.index(i));
            }
            flow
        })
        .collect()
}

#[test]
fn randomized_multi_hop_schedules_hold_the_invariants() {
    let mut rng = SimRng::seed_from(0x70B0);
    let mut reused_strictly_shorter = 0usize;
    for case in 0..200 {
        let topology = match case % 3 {
            0 => random_line(&mut rng),
            1 => random_grid(&mut rng),
            _ => random_clustered(&mut rng),
        };
        let flows = random_flows(&mut rng, &topology);
        // A cycle long enough that the serialized bound always fits:
        // failures below are scheduler bugs, not capacity limits.
        let cfg = RtLinkConfig {
            slots_per_cycle: flows.len() + 2,
            ..RtLinkConfig::default()
        };

        let (schedule, placed) = SlotSchedule::place_flows(&cfg, &topology, &flows)
            .unwrap_or_else(|e| panic!("case {case}: spatial placement failed: {e}"));
        assert!(
            schedule.is_interference_free(&topology),
            "case {case}: 2-hop interference violated"
        );
        for (i, flow) in flows.iter().enumerate() {
            if let Some(dep) = flow.after {
                assert!(
                    placed[dep] < placed[i],
                    "case {case}: flow {i} not after its dependency"
                );
            }
        }

        let (serial, serial_placed) = SlotSchedule::place_flows_serial(&cfg, &flows)
            .unwrap_or_else(|e| panic!("case {case}: serial placement failed: {e}"));
        assert!(serial.is_interference_free(&topology));
        assert_eq!(serial.max_slot(), Some(flows.len()));
        assert_eq!(serial_placed.len(), placed.len());
        let reused_len = schedule.max_slot().expect("non-empty");
        assert!(
            reused_len <= serial.max_slot().unwrap(),
            "case {case}: reuse needed {reused_len} slots, serialized bound {}",
            serial.max_slot().unwrap()
        );
        if reused_len < serial.max_slot().unwrap() {
            reused_strictly_shorter += 1;
        }
    }
    // The suite must actually exercise spatial reuse, not just degenerate
    // single-slot cases.
    assert!(
        reused_strictly_shorter > 40,
        "only {reused_strictly_shorter}/200 cases reused slots"
    );
}

/// The invariant checker itself is exercised against schedules that pack
/// unrelated transmitters into one slot: hand-building a colliding slot
/// must be caught.
#[test]
fn is_interference_free_rejects_hand_built_collisions() {
    let mut rng = SimRng::seed_from(0xBAD);
    let topology = random_line(&mut rng);
    let flows = vec![
        Flow::new(NodeId(0), NodeId(1)),
        Flow::new(NodeId(1), NodeId(2)),
    ];
    let cfg = RtLinkConfig::default();
    let (mut schedule, _) = SlotSchedule::place_flows(&cfg, &topology, &flows).unwrap();
    // Force the second flow into the first flow's slot: owners 0 and 1
    // are neighbors, a guaranteed 2-hop conflict.
    schedule.assign(evm_mac::rtlink::SlotAssignment {
        slot: 1,
        owner: NodeId(1),
        listeners: vec![NodeId(2)],
    });
    assert!(!schedule.is_interference_free(&topology));
}
