//! Fault injection: node crashes and link blackouts.
//!
//! The paper's premise is that "links, nodes and topology of wireless
//! systems are inherently unreliable". A [`FaultPlan`] scripts that
//! unreliability deterministically so experiments are reproducible: crash
//! node 3 at t=300 s, black out the Ctrl-A→head link between 400 s and
//! 450 s, and so on.

use evm_sim::SimTime;

use crate::node::NodeId;

/// A scripted node crash (optionally with recovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCrash {
    /// The node that fails.
    pub node: NodeId,
    /// When it stops responding.
    pub at: SimTime,
    /// When it comes back, if ever.
    pub recovers_at: Option<SimTime>,
}

impl NodeCrash {
    /// A permanent crash at `at`.
    #[must_use]
    pub fn permanent(node: NodeId, at: SimTime) -> Self {
        NodeCrash {
            node,
            at,
            recovers_at: None,
        }
    }

    /// A transient crash over `[at, recovers_at)`.
    ///
    /// # Panics
    ///
    /// Panics if `recovers_at <= at`.
    #[must_use]
    pub fn transient(node: NodeId, at: SimTime, recovers_at: SimTime) -> Self {
        assert!(recovers_at > at, "recovery must follow the crash");
        NodeCrash {
            node,
            at,
            recovers_at: Some(recovers_at),
        }
    }

    /// `true` if the node is down at time `t` because of this crash.
    #[must_use]
    pub fn is_down_at(&self, t: SimTime) -> bool {
        t >= self.at && self.recovers_at.is_none_or(|r| t < r)
    }
}

/// A scripted total outage of one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkBlackout {
    /// Transmitting side of the affected link.
    pub from: NodeId,
    /// Receiving side of the affected link.
    pub to: NodeId,
    /// Start of the outage.
    pub at: SimTime,
    /// End of the outage (exclusive).
    pub until: SimTime,
}

impl LinkBlackout {
    /// Creates a blackout of `from → to` over `[at, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `until <= at`.
    #[must_use]
    pub fn new(from: NodeId, to: NodeId, at: SimTime, until: SimTime) -> Self {
        assert!(until > at, "blackout must have positive length");
        LinkBlackout {
            from,
            to,
            at,
            until,
        }
    }

    /// `true` if the link is dead at `t`.
    #[must_use]
    pub fn is_active_at(&self, t: SimTime) -> bool {
        t >= self.at && t < self.until
    }
}

/// A deterministic script of crashes and blackouts for one run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    crashes: Vec<NodeCrash>,
    blackouts: Vec<LinkBlackout>,
}

impl FaultPlan {
    /// An empty plan (no injected faults).
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a node crash.
    pub fn add_crash(&mut self, crash: NodeCrash) -> &mut Self {
        self.crashes.push(crash);
        self
    }

    /// Adds a link blackout.
    pub fn add_blackout(&mut self, blackout: LinkBlackout) -> &mut Self {
        self.blackouts.push(blackout);
        self
    }

    /// `true` if `node` is up (not crashed) at `t`.
    #[must_use]
    pub fn node_alive(&self, node: NodeId, t: SimTime) -> bool {
        !self
            .crashes
            .iter()
            .any(|c| c.node == node && c.is_down_at(t))
    }

    /// `true` if the directed link `from → to` is usable at `t` (both
    /// endpoints alive and no blackout).
    #[must_use]
    pub fn link_usable(&self, from: NodeId, to: NodeId, t: SimTime) -> bool {
        self.node_alive(from, t)
            && self.node_alive(to, t)
            && !self
                .blackouts
                .iter()
                .any(|b| b.from == from && b.to == to && b.is_active_at(t))
    }

    /// All scripted crashes.
    #[must_use]
    pub fn crashes(&self) -> &[NodeCrash] {
        &self.crashes
    }

    /// All scripted blackouts.
    #[must_use]
    pub fn blackouts(&self) -> &[LinkBlackout] {
        &self.blackouts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T100: SimTime = SimTime::from_secs(100);
    const T200: SimTime = SimTime::from_secs(200);
    const T300: SimTime = SimTime::from_secs(300);

    #[test]
    fn permanent_crash_never_recovers() {
        let c = NodeCrash::permanent(NodeId(1), T100);
        assert!(!c.is_down_at(SimTime::from_secs(99)));
        assert!(c.is_down_at(T100));
        assert!(c.is_down_at(SimTime::from_secs(1_000_000)));
    }

    #[test]
    fn transient_crash_recovers() {
        let c = NodeCrash::transient(NodeId(1), T100, T200);
        assert!(c.is_down_at(SimTime::from_secs(150)));
        assert!(!c.is_down_at(T200));
    }

    #[test]
    fn plan_answers_liveness_and_links() {
        let mut plan = FaultPlan::none();
        plan.add_crash(NodeCrash::transient(NodeId(2), T100, T200))
            .add_blackout(LinkBlackout::new(NodeId(1), NodeId(3), T200, T300));

        // Before anything: all good.
        assert!(plan.node_alive(NodeId(2), SimTime::from_secs(50)));
        assert!(plan.link_usable(NodeId(1), NodeId(3), SimTime::from_secs(50)));

        // During the crash: node 2 down, and any link touching it unusable.
        assert!(!plan.node_alive(NodeId(2), SimTime::from_secs(150)));
        assert!(!plan.link_usable(NodeId(1), NodeId(2), SimTime::from_secs(150)));
        assert!(!plan.link_usable(NodeId(2), NodeId(1), SimTime::from_secs(150)));

        // During the blackout: only the scripted direction is dead.
        assert!(!plan.link_usable(NodeId(1), NodeId(3), SimTime::from_secs(250)));
        assert!(plan.link_usable(NodeId(3), NodeId(1), SimTime::from_secs(250)));

        // Afterwards: all restored.
        assert!(plan.link_usable(NodeId(1), NodeId(3), SimTime::from_secs(301)));
    }

    #[test]
    #[should_panic(expected = "recovery must follow")]
    fn bad_transient_panics() {
        let _ = NodeCrash::transient(NodeId(0), T200, T100);
    }
}
