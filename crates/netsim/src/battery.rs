//! Battery model and lifetime projection.
//!
//! FireFly nodes run on 2×AA cells; the paper's headline platform claim is a
//! 1.8-year lifetime at a 5 % duty cycle under RT-Link. [`Battery`] converts
//! the charge accounted by [`crate::EnergyMeter`] into remaining capacity
//! and projected lifetime.

use std::fmt;

use evm_sim::SimDuration;

/// A primary-cell battery with usable capacity in mAh.
#[derive(Debug, Clone, PartialEq)]
pub struct Battery {
    capacity_mah: f64,
    consumed_mah: f64,
}

impl Battery {
    /// Creates a battery with the given usable capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_mah` is not strictly positive.
    #[must_use]
    pub fn new(capacity_mah: f64) -> Self {
        assert!(capacity_mah > 0.0, "capacity must be positive");
        Battery {
            capacity_mah,
            consumed_mah: 0.0,
        }
    }

    /// Two alkaline AA cells in series: ~2500 mAh usable.
    #[must_use]
    pub fn two_aa() -> Self {
        Battery::new(2500.0)
    }

    /// Usable capacity, mAh.
    #[must_use]
    pub fn capacity_mah(&self) -> f64 {
        self.capacity_mah
    }

    /// Charge consumed so far, mAh.
    #[must_use]
    pub fn consumed_mah(&self) -> f64 {
        self.consumed_mah
    }

    /// Remaining charge, mAh (never negative).
    #[must_use]
    pub fn remaining_mah(&self) -> f64 {
        (self.capacity_mah - self.consumed_mah).max(0.0)
    }

    /// Remaining fraction in `[0, 1]`.
    #[must_use]
    pub fn remaining_fraction(&self) -> f64 {
        self.remaining_mah() / self.capacity_mah
    }

    /// Draws `mah` of charge; returns `false` if the battery is now empty.
    pub fn draw_mah(&mut self, mah: f64) -> bool {
        assert!(mah >= 0.0, "cannot draw negative charge");
        self.consumed_mah += mah;
        !self.is_empty()
    }

    /// `true` once all usable charge is gone.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.consumed_mah >= self.capacity_mah
    }

    /// Projected total lifetime at a constant average current, as a
    /// simulation duration.
    ///
    /// # Panics
    ///
    /// Panics if `avg_current_ma` is not strictly positive.
    #[must_use]
    pub fn lifetime_at(&self, avg_current_ma: f64) -> SimDuration {
        assert!(avg_current_ma > 0.0, "current must be positive");
        let hours = self.capacity_mah / avg_current_ma;
        SimDuration::from_secs_f64(hours * 3600.0)
    }

    /// Projected lifetime in years at a constant average current.
    ///
    /// # Panics
    ///
    /// Panics if `avg_current_ma` is not strictly positive.
    #[must_use]
    pub fn lifetime_years_at(&self, avg_current_ma: f64) -> f64 {
        self.lifetime_at(avg_current_ma).as_secs_f64() / (365.25 * 24.0 * 3600.0)
    }
}

impl Default for Battery {
    fn default() -> Self {
        Battery::two_aa()
    }
}

impl fmt::Display for Battery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "battery {:.0}/{:.0} mAh ({:.1}%)",
            self.remaining_mah(),
            self.capacity_mah,
            self.remaining_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_tracks_remaining() {
        let mut b = Battery::new(100.0);
        assert!(b.draw_mah(40.0));
        assert_eq!(b.remaining_mah(), 60.0);
        assert!((b.remaining_fraction() - 0.6).abs() < 1e-12);
        assert!(!b.draw_mah(60.0));
        assert!(b.is_empty());
        assert_eq!(b.remaining_mah(), 0.0);
    }

    #[test]
    fn lifetime_projection() {
        let b = Battery::two_aa();
        // 2500 mAh at 1 mA = 2500 h.
        let lt = b.lifetime_at(1.0);
        assert_eq!(lt.as_secs_f64() as u64, 2500 * 3600);
        // ~0.285 years.
        assert!((b.lifetime_years_at(1.0) - 2500.0 / (365.25 * 24.0)).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_percentage() {
        let b = Battery::new(200.0);
        assert!(b.to_string().contains("100.0%"));
    }

    #[test]
    #[should_panic(expected = "current must be positive")]
    fn zero_current_lifetime_panics() {
        let _ = Battery::two_aa().lifetime_at(0.0);
    }
}
