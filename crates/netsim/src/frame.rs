//! IEEE 802.15.4 frame sizing and airtime.
//!
//! The CC2420 operates at 250 kbps in the 2.4 GHz band. Airtime is what the
//! TDMA slot sizing, LPL preamble costs and energy metering are all built on,
//! so it lives here at the bottom of the stack.

use evm_sim::SimDuration;

use crate::node::NodeId;

/// Radio bitrate of the CC2420 at 2.4 GHz, bits per second.
pub const RADIO_BITRATE_BPS: u64 = 250_000;

/// PHY overhead per frame: 4 B preamble + 1 B SFD + 1 B length.
pub const PHY_HEADER_BYTES: usize = 6;

/// MAC overhead assumed per data frame (FCF, sequence, addressing, FCS).
pub const MAC_HEADER_BYTES: usize = 11;

/// Maximum 802.15.4 PHY payload (aMaxPHYPacketSize).
pub const MAX_FRAME_BYTES: usize = 127;

/// Destination of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Point-to-point frame for one receiver.
    Unicast(NodeId),
    /// Delivered to every node in radio range of the sender.
    Broadcast,
}

/// One over-the-air frame.
///
/// The simulator does not carry real octets for protocol payloads — upper
/// layers attach their typed messages out of band — but the *length* is
/// real, because airtime and energy derive from it.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Transmitting node.
    pub src: NodeId,
    /// Unicast destination or broadcast.
    pub dst: FrameKind,
    /// MAC payload length in bytes (excluding PHY + MAC headers).
    pub payload_bytes: usize,
    /// Opaque upper-layer handle used by the runtime to route the typed
    /// message that this frame carries.
    pub handle: u64,
}

impl Frame {
    /// Creates a frame.
    ///
    /// # Panics
    ///
    /// Panics if the total frame length would exceed
    /// [`MAX_FRAME_BYTES`].
    #[must_use]
    pub fn new(src: NodeId, dst: FrameKind, payload_bytes: usize, handle: u64) -> Self {
        let total = payload_bytes + MAC_HEADER_BYTES;
        assert!(
            total <= MAX_FRAME_BYTES,
            "frame too large: {total} > {MAX_FRAME_BYTES} bytes"
        );
        Frame {
            src,
            dst,
            payload_bytes,
            handle,
        }
    }

    /// Total bytes on the air, including PHY and MAC headers.
    #[must_use]
    pub fn air_bytes(&self) -> usize {
        PHY_HEADER_BYTES + MAC_HEADER_BYTES + self.payload_bytes
    }

    /// Time this frame occupies the channel.
    #[must_use]
    pub fn airtime(&self) -> SimDuration {
        airtime_for_bytes(self.air_bytes())
    }

    /// `true` if this is a broadcast frame.
    #[must_use]
    pub fn is_broadcast(&self) -> bool {
        matches!(self.dst, FrameKind::Broadcast)
    }
}

/// Airtime of `bytes` octets at the 802.15.4 bitrate.
#[must_use]
pub fn airtime_for_bytes(bytes: usize) -> SimDuration {
    SimDuration::from_micros((bytes as u64 * 8 * 1_000_000) / RADIO_BITRATE_BPS)
}

/// How many frames a payload of `total_bytes` must be split into, given the
/// per-frame payload capacity. Used by the task-migration protocol to move
/// TCB + stack + data images.
#[must_use]
pub fn frames_needed(total_bytes: usize, per_frame_payload: usize) -> usize {
    assert!(per_frame_payload > 0, "payload capacity must be positive");
    total_bytes.div_ceil(per_frame_payload)
}

/// Largest usable MAC payload per frame.
#[must_use]
pub fn max_payload() -> usize {
    MAX_FRAME_BYTES - MAC_HEADER_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airtime_of_full_frame() {
        // 127 B + 6 B PHY = 133 B = 1064 bits -> 4256 us at 250 kbps.
        let f = Frame::new(NodeId(1), FrameKind::Broadcast, max_payload(), 0);
        assert_eq!(f.air_bytes(), 133);
        assert_eq!(f.airtime().as_micros(), 4_256);
    }

    #[test]
    fn airtime_scales_linearly() {
        assert_eq!(airtime_for_bytes(1).as_micros(), 32);
        assert_eq!(airtime_for_bytes(10).as_micros(), 320);
    }

    #[test]
    #[should_panic(expected = "frame too large")]
    fn oversize_frame_panics() {
        let _ = Frame::new(NodeId(1), FrameKind::Broadcast, 120, 0);
    }

    #[test]
    fn fragmentation_count() {
        assert_eq!(frames_needed(0, 100), 0);
        assert_eq!(frames_needed(1, 100), 1);
        assert_eq!(frames_needed(100, 100), 1);
        assert_eq!(frames_needed(101, 100), 2);
        // A 512 B task image over 116 B payloads needs 5 frames.
        assert_eq!(frames_needed(512, max_payload()), 5);
    }

    #[test]
    fn broadcast_flag() {
        assert!(Frame::new(NodeId(1), FrameKind::Broadcast, 4, 0).is_broadcast());
        assert!(!Frame::new(NodeId(1), FrameKind::Unicast(NodeId(2)), 4, 0).is_broadcast());
    }

    #[test]
    fn airtime_monotonic_in_payload() {
        for a in 0..116usize {
            for b in a..116usize {
                let fa = Frame::new(NodeId(0), FrameKind::Broadcast, a, 0);
                let fb = Frame::new(NodeId(0), FrameKind::Broadcast, b, 0);
                assert!(fa.airtime() <= fb.airtime());
            }
        }
    }

    #[test]
    fn fragments_cover_payload_over_random_sizes() {
        use evm_sim::SimRng;
        let mut rng = SimRng::seed_from(0xF7A6);
        for _ in 0..2_000 {
            let total = 1 + rng.index(9_999);
            let cap = 1 + rng.index(115);
            let n = frames_needed(total, cap);
            assert!(n * cap >= total, "{n} frames x {cap} B < {total} B");
            assert!(
                (n - 1) * cap < total,
                "{n} frames is one too many for {total} B"
            );
        }
    }
}
