//! Deployment topologies and connectivity.
//!
//! A [`Topology`] owns the set of deployed nodes and answers connectivity
//! questions against a [`Channel`]: who hears whom, hop distances and
//! 2-hop interference sets (which the RT-Link slot scheduler needs).

use std::collections::{HashMap, HashSet, VecDeque};

use crate::channel::Channel;
use crate::node::{NodeId, NodeInfo, NodeKind, Position};

/// A static deployment of nodes plus its derived connectivity graph.
#[derive(Debug)]
pub struct Topology {
    nodes: Vec<NodeInfo>,
    by_id: HashMap<NodeId, usize>,
    /// Adjacency: bidirectional usable links.
    neighbors: HashMap<NodeId, Vec<NodeId>>,
}

impl Topology {
    /// Builds a topology from node descriptions, deriving links from the
    /// channel model (a link exists if it is usable in **both**
    /// directions).
    ///
    /// # Panics
    ///
    /// Panics if two nodes share a [`NodeId`].
    #[must_use]
    pub fn derive(nodes: Vec<NodeInfo>, channel: &mut Channel) -> Self {
        let mut by_id = HashMap::new();
        for (i, n) in nodes.iter().enumerate() {
            let prev = by_id.insert(n.id, i);
            assert!(prev.is_none(), "duplicate node id {}", n.id);
        }
        let mut neighbors: HashMap<NodeId, Vec<NodeId>> =
            nodes.iter().map(|n| (n.id, Vec::new())).collect();
        for a in &nodes {
            for b in &nodes {
                if a.id >= b.id {
                    continue;
                }
                let d = a.position.distance_to(&b.position);
                if channel.is_connected((a.id, b.id), d) && channel.is_connected((b.id, a.id), d) {
                    neighbors.get_mut(&a.id).expect("known id").push(b.id);
                    neighbors.get_mut(&b.id).expect("known id").push(a.id);
                }
            }
        }
        for v in neighbors.values_mut() {
            v.sort_unstable();
        }
        Topology {
            nodes,
            by_id,
            neighbors,
        }
    }

    /// Builds the paper's Fig. 5 testbed shape: a gateway at the origin and
    /// `n` nodes on a circle of radius `radius_m` around it, all mutually
    /// in range for a reasonable channel.
    #[must_use]
    pub fn star(n: usize, radius_m: f64, kinds: &[NodeKind], channel: &mut Channel) -> Self {
        let mut nodes = vec![NodeInfo::new(
            NodeId::GATEWAY,
            NodeKind::Gateway,
            Position::new(0.0, 0.0),
            "GW",
        )];
        for i in 0..n {
            let angle = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            let kind = kinds[i % kinds.len()];
            nodes.push(NodeInfo::new(
                NodeId((i + 1) as u16),
                kind,
                Position::new(radius_m * angle.cos(), radius_m * angle.sin()),
                format!("{kind}-{}", i + 1),
            ));
        }
        Topology::derive(nodes, channel)
    }

    /// All nodes.
    #[must_use]
    pub fn nodes(&self) -> &[NodeInfo] {
        &self.nodes
    }

    /// Node count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the deployment is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up a node by id.
    #[must_use]
    pub fn node(&self, id: NodeId) -> Option<&NodeInfo> {
        self.by_id.get(&id).map(|&i| &self.nodes[i])
    }

    /// Distance between two deployed nodes, meters.
    ///
    /// # Panics
    ///
    /// Panics if either id is unknown.
    #[must_use]
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        let pa = self.node(a).expect("unknown node").position;
        let pb = self.node(b).expect("unknown node").position;
        pa.distance_to(&pb)
    }

    /// Direct neighbors of `id` (usable bidirectional links).
    #[must_use]
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        self.neighbors.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `true` if `a` and `b` share a usable link.
    #[must_use]
    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).contains(&b)
    }

    /// Hop count of the shortest path from `from` to `to` (BFS), or `None`
    /// if unreachable.
    #[must_use]
    pub fn hops(&self, from: NodeId, to: NodeId) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut seen: HashSet<NodeId> = HashSet::from([from]);
        let mut queue = VecDeque::from([(from, 0usize)]);
        while let Some((cur, d)) = queue.pop_front() {
            for &nb in self.neighbors(cur) {
                if nb == to {
                    return Some(d + 1);
                }
                if seen.insert(nb) {
                    queue.push_back((nb, d + 1));
                }
            }
        }
        None
    }

    /// `true` if every node can reach every other node.
    #[must_use]
    pub fn is_fully_connected(&self) -> bool {
        match self.nodes.first() {
            None => true,
            Some(first) => {
                let mut seen: HashSet<NodeId> = HashSet::from([first.id]);
                let mut queue = VecDeque::from([first.id]);
                while let Some(cur) = queue.pop_front() {
                    for &nb in self.neighbors(cur) {
                        if seen.insert(nb) {
                            queue.push_back(nb);
                        }
                    }
                }
                seen.len() == self.nodes.len()
            }
        }
    }

    /// The set of nodes within two hops of `id` (excluding `id` itself):
    /// the interference set the TDMA slot scheduler must keep
    /// collision-free.
    #[must_use]
    pub fn two_hop_set(&self, id: NodeId) -> HashSet<NodeId> {
        let mut out = HashSet::new();
        for &nb in self.neighbors(id) {
            out.insert(nb);
            for &nb2 in self.neighbors(nb) {
                if nb2 != id {
                    out.insert(nb2);
                }
            }
        }
        out
    }

    /// Ids of all nodes with the given kind.
    #[must_use]
    pub fn of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind == kind)
            .map(|n| n.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Channel, ChannelConfig};
    use evm_sim::SimRng;

    fn channel() -> Channel {
        Channel::new(ChannelConfig::default(), SimRng::seed_from(1))
    }

    fn line(nodes: usize, spacing: f64) -> Topology {
        let mut ch = channel();
        let infos = (0..nodes)
            .map(|i| {
                NodeInfo::new(
                    NodeId(i as u16),
                    NodeKind::Controller,
                    Position::new(i as f64 * spacing, 0.0),
                    format!("c{i}"),
                )
            })
            .collect();
        Topology::derive(infos, &mut ch)
    }

    #[test]
    fn star_is_fully_connected() {
        let mut ch = channel();
        let topo = Topology::star(
            6,
            15.0,
            &[NodeKind::Sensor, NodeKind::Controller, NodeKind::Actuator],
            &mut ch,
        );
        assert_eq!(topo.len(), 7);
        assert!(topo.is_fully_connected());
        assert_eq!(topo.of_kind(NodeKind::Gateway), vec![NodeId::GATEWAY]);
        assert_eq!(topo.of_kind(NodeKind::Sensor).len(), 2);
    }

    #[test]
    fn line_topology_hops() {
        // 40 m spacing: neighbors only adjacent (80 m is out of range for
        // the default config).
        let topo = line(5, 40.0);
        assert!(topo.are_neighbors(NodeId(0), NodeId(1)));
        assert!(!topo.are_neighbors(NodeId(0), NodeId(2)));
        assert_eq!(topo.hops(NodeId(0), NodeId(4)), Some(4));
        assert_eq!(topo.hops(NodeId(2), NodeId(2)), Some(0));
    }

    #[test]
    fn disconnected_partition_detected() {
        let mut ch = channel();
        let infos = vec![
            NodeInfo::new(NodeId(0), NodeKind::Sensor, Position::new(0.0, 0.0), "a"),
            NodeInfo::new(NodeId(1), NodeKind::Sensor, Position::new(1000.0, 0.0), "b"),
        ];
        let topo = Topology::derive(infos, &mut ch);
        assert!(!topo.is_fully_connected());
        assert_eq!(topo.hops(NodeId(0), NodeId(1)), None);
    }

    #[test]
    fn two_hop_set_on_line() {
        let topo = line(5, 40.0);
        let set = topo.two_hop_set(NodeId(2));
        assert!(set.contains(&NodeId(0)));
        assert!(set.contains(&NodeId(1)));
        assert!(set.contains(&NodeId(3)));
        assert!(set.contains(&NodeId(4)));
        assert!(!set.contains(&NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "duplicate node id")]
    fn duplicate_ids_panic() {
        let mut ch = channel();
        let infos = vec![
            NodeInfo::new(NodeId(0), NodeKind::Sensor, Position::new(0.0, 0.0), "a"),
            NodeInfo::new(NodeId(0), NodeKind::Sensor, Position::new(1.0, 0.0), "b"),
        ];
        let _ = Topology::derive(infos, &mut ch);
    }

    #[test]
    fn distance_lookup() {
        let topo = line(3, 10.0);
        assert!((topo.distance(NodeId(0), NodeId(2)) - 20.0).abs() < 1e-12);
    }
}
