//! Deployment topologies and connectivity.
//!
//! A [`Topology`] owns the set of deployed nodes and answers connectivity
//! questions against a [`Channel`]: who hears whom, hop distances and
//! 2-hop interference sets (which the RT-Link slot scheduler needs).

use std::collections::{HashMap, HashSet, VecDeque};

use crate::channel::Channel;
use crate::node::{NodeId, NodeInfo, NodeKind, Position};

/// A static deployment of nodes plus its derived connectivity graph.
#[derive(Debug)]
pub struct Topology {
    nodes: Vec<NodeInfo>,
    by_id: HashMap<NodeId, usize>,
    /// Adjacency: bidirectional usable links.
    neighbors: HashMap<NodeId, Vec<NodeId>>,
}

impl Topology {
    /// Builds a topology from node descriptions, deriving links from the
    /// channel model (a link exists if it is usable in **both**
    /// directions).
    ///
    /// # Panics
    ///
    /// Panics if two nodes share a [`NodeId`].
    #[must_use]
    pub fn derive(nodes: Vec<NodeInfo>, channel: &mut Channel) -> Self {
        let mut by_id = HashMap::new();
        for (i, n) in nodes.iter().enumerate() {
            let prev = by_id.insert(n.id, i);
            assert!(prev.is_none(), "duplicate node id {}", n.id);
        }
        let mut neighbors: HashMap<NodeId, Vec<NodeId>> =
            nodes.iter().map(|n| (n.id, Vec::new())).collect();
        for a in &nodes {
            for b in &nodes {
                if a.id >= b.id {
                    continue;
                }
                let d = a.position.distance_to(&b.position);
                if channel.is_connected((a.id, b.id), d) && channel.is_connected((b.id, a.id), d) {
                    neighbors.get_mut(&a.id).expect("known id").push(b.id);
                    neighbors.get_mut(&b.id).expect("known id").push(a.id);
                }
            }
        }
        for v in neighbors.values_mut() {
            v.sort_unstable();
            // Defensive: a duplicate edge would double-count a neighbor in
            // BFS expansions and interference sets.
            v.dedup();
        }
        Topology {
            nodes,
            by_id,
            neighbors,
        }
    }

    /// Builds a topology from node descriptions and an **explicit** link
    /// list, bypassing the channel-derived adjacency. Each `(a, b)` pair
    /// becomes one bidirectional link. Fleet-scale deployments use this:
    /// deriving adjacency is O(n²) channel queries and would mesh every
    /// co-located cell together, while the fleet schedule wants exactly
    /// the per-cell links.
    ///
    /// # Panics
    ///
    /// Panics if two nodes share a [`NodeId`] or a link references an
    /// unknown id.
    #[must_use]
    pub fn with_links(nodes: Vec<NodeInfo>, links: &[(NodeId, NodeId)]) -> Self {
        let mut by_id = HashMap::new();
        for (i, n) in nodes.iter().enumerate() {
            let prev = by_id.insert(n.id, i);
            assert!(prev.is_none(), "duplicate node id {}", n.id);
        }
        let mut neighbors: HashMap<NodeId, Vec<NodeId>> =
            nodes.iter().map(|n| (n.id, Vec::new())).collect();
        for &(a, b) in links {
            assert!(by_id.contains_key(&a), "link references unknown id {a}");
            assert!(by_id.contains_key(&b), "link references unknown id {b}");
            assert!(a != b, "self-link on id {a}");
            neighbors.get_mut(&a).expect("known id").push(b);
            neighbors.get_mut(&b).expect("known id").push(a);
        }
        for v in neighbors.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        Topology {
            nodes,
            by_id,
            neighbors,
        }
    }

    /// Builds the paper's Fig. 5 testbed shape: a gateway at the origin and
    /// `n` nodes on a circle of radius `radius_m` around it, all mutually
    /// in range for a reasonable channel.
    #[must_use]
    pub fn star(n: usize, radius_m: f64, kinds: &[NodeKind], channel: &mut Channel) -> Self {
        let mut nodes = vec![NodeInfo::new(
            NodeId::GATEWAY,
            NodeKind::Gateway,
            Position::new(0.0, 0.0),
            "GW",
        )];
        for i in 0..n {
            let angle = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            let kind = kinds[i % kinds.len()];
            nodes.push(NodeInfo::new(
                NodeId((i + 1) as u16),
                kind,
                Position::new(radius_m * angle.cos(), radius_m * angle.sin()),
                format!("{kind}-{}", i + 1),
            ));
        }
        Topology::derive(nodes, channel)
    }

    /// All nodes.
    #[must_use]
    pub fn nodes(&self) -> &[NodeInfo] {
        &self.nodes
    }

    /// Node count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the deployment is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up a node by id.
    #[must_use]
    pub fn node(&self, id: NodeId) -> Option<&NodeInfo> {
        self.by_id.get(&id).map(|&i| &self.nodes[i])
    }

    /// Distance between two deployed nodes, meters.
    ///
    /// # Panics
    ///
    /// Panics if either id is unknown.
    #[must_use]
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        let pa = self.node(a).expect("unknown node").position;
        let pb = self.node(b).expect("unknown node").position;
        pa.distance_to(&pb)
    }

    /// Direct neighbors of `id` (usable bidirectional links).
    #[must_use]
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        self.neighbors.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `true` if `a` and `b` share a usable link. Binary search: every
    /// constructor leaves neighbor lists sorted and deduplicated, and at
    /// fleet scale a gateway's list holds tens of thousands of entries.
    #[must_use]
    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Hop count of the shortest path from `from` to `to` (BFS), or `None`
    /// if unreachable or either endpoint is not deployed.
    #[must_use]
    pub fn hops(&self, from: NodeId, to: NodeId) -> Option<usize> {
        self.shortest_path(from, to).map(|p| p.len() - 1)
    }

    /// The shortest path from `from` to `to` as a node sequence (both
    /// endpoints included; `[from]` when they coincide), or `None` if
    /// unreachable or either endpoint is not deployed.
    ///
    /// Deterministic: BFS expands the sorted neighbor lists in order and a
    /// node's parent is its first discoverer, so equal-length ties always
    /// resolve the same way — multi-hop flow routing (and its golden
    /// traces) depend on this.
    #[must_use]
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        if self.node(from).is_none() || self.node(to).is_none() {
            return None;
        }
        if from == to {
            return Some(vec![from]);
        }
        let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
        let mut seen: HashSet<NodeId> = HashSet::from([from]);
        let mut queue = VecDeque::from([from]);
        'bfs: while let Some(cur) = queue.pop_front() {
            for &nb in self.neighbors(cur) {
                if seen.insert(nb) {
                    parent.insert(nb, cur);
                    if nb == to {
                        break 'bfs;
                    }
                    queue.push_back(nb);
                }
            }
        }
        if !parent.contains_key(&to) {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while let Some(&p) = parent.get(&cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// `true` if every node can reach every other node.
    #[must_use]
    pub fn is_fully_connected(&self) -> bool {
        match self.nodes.first() {
            None => true,
            Some(first) => {
                let mut seen: HashSet<NodeId> = HashSet::from([first.id]);
                let mut queue = VecDeque::from([first.id]);
                while let Some(cur) = queue.pop_front() {
                    for &nb in self.neighbors(cur) {
                        if seen.insert(nb) {
                            queue.push_back(nb);
                        }
                    }
                }
                seen.len() == self.nodes.len()
            }
        }
    }

    /// The set of nodes within two hops of `id` (excluding `id` itself):
    /// the interference set the TDMA slot scheduler must keep
    /// collision-free.
    #[must_use]
    pub fn two_hop_set(&self, id: NodeId) -> HashSet<NodeId> {
        let mut out = HashSet::new();
        for &nb in self.neighbors(id) {
            out.insert(nb);
            for &nb2 in self.neighbors(nb) {
                if nb2 != id {
                    out.insert(nb2);
                }
            }
        }
        out
    }

    /// Ids of all nodes with the given kind.
    #[must_use]
    pub fn of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind == kind)
            .map(|n| n.id)
            .collect()
    }

    /// The surviving sub-topology after removing `dead` nodes: same nodes
    /// and links minus everything touching a removed id. Derived from the
    /// already-sampled connectivity graph — no channel re-query, so a
    /// mid-run view of a deployment with crashed nodes never perturbs the
    /// channel's RNG stream (runtime re-routing depends on this).
    #[must_use]
    pub fn without_nodes(&self, dead: &[NodeId]) -> Topology {
        let nodes: Vec<NodeInfo> = self
            .nodes
            .iter()
            .filter(|n| !dead.contains(&n.id))
            .cloned()
            .collect();
        let by_id = nodes.iter().enumerate().map(|(i, n)| (n.id, i)).collect();
        let neighbors = nodes
            .iter()
            .map(|n| {
                let nbs: Vec<NodeId> = self
                    .neighbors(n.id)
                    .iter()
                    .copied()
                    .filter(|nb| !dead.contains(nb))
                    .collect();
                (n.id, nbs)
            })
            .collect();
        Topology {
            nodes,
            by_id,
            neighbors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Channel, ChannelConfig};
    use evm_sim::SimRng;

    fn channel() -> Channel {
        Channel::new(ChannelConfig::default(), SimRng::seed_from(1))
    }

    fn line(nodes: usize, spacing: f64) -> Topology {
        let mut ch = channel();
        let infos = (0..nodes)
            .map(|i| {
                NodeInfo::new(
                    NodeId(i as u16),
                    NodeKind::Controller,
                    Position::new(i as f64 * spacing, 0.0),
                    format!("c{i}"),
                )
            })
            .collect();
        Topology::derive(infos, &mut ch)
    }

    #[test]
    fn star_is_fully_connected() {
        let mut ch = channel();
        let topo = Topology::star(
            6,
            15.0,
            &[NodeKind::Sensor, NodeKind::Controller, NodeKind::Actuator],
            &mut ch,
        );
        assert_eq!(topo.len(), 7);
        assert!(topo.is_fully_connected());
        assert_eq!(topo.of_kind(NodeKind::Gateway), vec![NodeId::GATEWAY]);
        assert_eq!(topo.of_kind(NodeKind::Sensor).len(), 2);
    }

    #[test]
    fn line_topology_hops() {
        // 40 m spacing: neighbors only adjacent (80 m is out of range for
        // the default config).
        let topo = line(5, 40.0);
        assert!(topo.are_neighbors(NodeId(0), NodeId(1)));
        assert!(!topo.are_neighbors(NodeId(0), NodeId(2)));
        assert_eq!(topo.hops(NodeId(0), NodeId(4)), Some(4));
        assert_eq!(topo.hops(NodeId(2), NodeId(2)), Some(0));
    }

    #[test]
    fn disconnected_partition_detected() {
        let mut ch = channel();
        let infos = vec![
            NodeInfo::new(NodeId(0), NodeKind::Sensor, Position::new(0.0, 0.0), "a"),
            NodeInfo::new(NodeId(1), NodeKind::Sensor, Position::new(1000.0, 0.0), "b"),
        ];
        let topo = Topology::derive(infos, &mut ch);
        assert!(!topo.is_fully_connected());
        assert_eq!(topo.hops(NodeId(0), NodeId(1)), None);
    }

    #[test]
    fn two_hop_set_on_line() {
        let topo = line(5, 40.0);
        let set = topo.two_hop_set(NodeId(2));
        assert!(set.contains(&NodeId(0)));
        assert!(set.contains(&NodeId(1)));
        assert!(set.contains(&NodeId(3)));
        assert!(set.contains(&NodeId(4)));
        assert!(!set.contains(&NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "duplicate node id")]
    fn duplicate_ids_panic() {
        let mut ch = channel();
        let infos = vec![
            NodeInfo::new(NodeId(0), NodeKind::Sensor, Position::new(0.0, 0.0), "a"),
            NodeInfo::new(NodeId(0), NodeKind::Sensor, Position::new(1.0, 0.0), "b"),
        ];
        let _ = Topology::derive(infos, &mut ch);
    }

    #[test]
    fn distance_lookup() {
        let topo = line(3, 10.0);
        assert!((topo.distance(NodeId(0), NodeId(2)) - 20.0).abs() < 1e-12);
    }

    /// Edge cases surfaced by the schedule property loop: an isolated
    /// node has an empty interference set (it can share any slot), and
    /// an undeployed id never aliases a deployed one.
    #[test]
    fn two_hop_set_of_isolated_and_unknown_nodes_is_empty() {
        let mut ch = channel();
        let infos = vec![
            NodeInfo::new(NodeId(0), NodeKind::Sensor, Position::new(0.0, 0.0), "a"),
            NodeInfo::new(NodeId(1), NodeKind::Sensor, Position::new(10.0, 0.0), "b"),
            NodeInfo::new(
                NodeId(9),
                NodeKind::Relay,
                Position::new(5000.0, 0.0),
                "lone",
            ),
        ];
        let topo = Topology::derive(infos, &mut ch);
        assert!(topo.two_hop_set(NodeId(9)).is_empty());
        assert!(topo.two_hop_set(NodeId(77)).is_empty());
        assert_eq!(topo.neighbors(NodeId(9)), &[]);
    }

    /// `hops`/`shortest_path` report `None` for undeployed endpoints —
    /// including the `from == to` case, which used to claim distance 0
    /// for ids the topology has never seen.
    #[test]
    fn hops_of_unknown_endpoints_is_none() {
        let topo = line(3, 10.0);
        assert_eq!(topo.hops(NodeId(42), NodeId(42)), None);
        assert_eq!(topo.hops(NodeId(0), NodeId(42)), None);
        assert_eq!(topo.hops(NodeId(42), NodeId(0)), None);
        assert_eq!(topo.shortest_path(NodeId(42), NodeId(0)), None);
        assert_eq!(topo.hops(NodeId(1), NodeId(1)), Some(0));
        assert_eq!(
            topo.shortest_path(NodeId(1), NodeId(1)),
            Some(vec![NodeId(1)])
        );
    }

    /// Two nodes at the same position (duplicate coordinates, distinct
    /// ids) form an ordinary 1 m-floored link, not a degenerate edge.
    #[test]
    fn co_located_nodes_link_once() {
        let mut ch = channel();
        let infos = vec![
            NodeInfo::new(NodeId(0), NodeKind::Sensor, Position::new(3.0, 4.0), "a"),
            NodeInfo::new(NodeId(1), NodeKind::Sensor, Position::new(3.0, 4.0), "b"),
        ];
        let topo = Topology::derive(infos, &mut ch);
        assert_eq!(topo.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(topo.neighbors(NodeId(1)), &[NodeId(0)]);
        assert_eq!(topo.two_hop_set(NodeId(0)), HashSet::from([NodeId(1)]));
    }

    #[test]
    fn shortest_path_is_deterministic_and_minimal() {
        // A 3x3 grid with 10 m spacing is densely connected; the path
        // must be minimal and identical across calls.
        let mut ch = channel();
        let infos = (0..9u16)
            .map(|i| {
                NodeInfo::new(
                    NodeId(i),
                    NodeKind::Relay,
                    Position::new(f64::from(i % 3) * 40.0, f64::from(i / 3) * 40.0),
                    format!("r{i}"),
                )
            })
            .collect();
        let topo = Topology::derive(infos, &mut ch);
        let p1 = topo.shortest_path(NodeId(0), NodeId(8)).expect("reachable");
        let p2 = topo.shortest_path(NodeId(0), NodeId(8)).expect("reachable");
        assert_eq!(p1, p2, "tie-breaks must be stable");
        assert_eq!(p1.len() - 1, topo.hops(NodeId(0), NodeId(8)).unwrap());
        assert_eq!(p1.first(), Some(&NodeId(0)));
        assert_eq!(p1.last(), Some(&NodeId(8)));
        for w in p1.windows(2) {
            assert!(topo.are_neighbors(w[0], w[1]), "{:?} not a link", w);
        }
    }

    /// `without_nodes` is the node-down view re-routing runs over: the
    /// dead node and every link touching it vanish, surviving links keep
    /// their order, and the original topology is untouched.
    #[test]
    fn without_nodes_removes_node_and_incident_links() {
        let topo = line(5, 40.0);
        let cut = topo.without_nodes(&[NodeId(1)]);
        assert_eq!(cut.len(), 4);
        assert!(cut.node(NodeId(1)).is_none());
        assert!(!cut.neighbors(NodeId(0)).contains(&NodeId(1)));
        assert!(!cut.neighbors(NodeId(2)).contains(&NodeId(1)));
        // The cut partitions the line: 0 is stranded, 2-3-4 survive.
        assert_eq!(cut.hops(NodeId(0), NodeId(4)), None);
        assert_eq!(cut.hops(NodeId(2), NodeId(4)), Some(2));
        // The original is untouched (the engine keeps the physical view).
        assert_eq!(topo.len(), 5);
        assert_eq!(topo.hops(NodeId(0), NodeId(4)), Some(4));
        // Removing nothing is an identity view.
        let same = topo.without_nodes(&[]);
        assert_eq!(same.len(), topo.len());
        for n in topo.nodes() {
            assert_eq!(same.neighbors(n.id), topo.neighbors(n.id));
        }
    }

    /// Explicit-adjacency construction: links come from the caller, not
    /// the channel, duplicates collapse, and far-apart nodes still link.
    #[test]
    fn with_links_uses_exactly_the_given_links() {
        let infos = vec![
            NodeInfo::new(NodeId(0), NodeKind::Gateway, Position::new(0.0, 0.0), "gw"),
            NodeInfo::new(NodeId(1), NodeKind::Sensor, Position::new(5000.0, 0.0), "s"),
            NodeInfo::new(
                NodeId(2),
                NodeKind::Controller,
                Position::new(0.0, 5000.0),
                "c",
            ),
        ];
        let topo = Topology::with_links(
            infos,
            &[
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(0)), // duplicate, reversed
                (NodeId(1), NodeId(2)),
            ],
        );
        assert_eq!(topo.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(topo.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
        assert!(!topo.are_neighbors(NodeId(0), NodeId(2)));
        assert_eq!(topo.hops(NodeId(0), NodeId(2)), Some(2));
        assert!(topo.is_fully_connected());
    }

    #[test]
    fn relay_kind_is_first_class() {
        let mut ch = channel();
        let topo = Topology::derive(
            vec![NodeInfo::new(
                NodeId(4),
                NodeKind::Relay,
                Position::new(0.0, 0.0),
                "R1",
            )],
            &mut ch,
        );
        assert_eq!(topo.of_kind(NodeKind::Relay), vec![NodeId(4)]);
        assert_eq!(NodeKind::Relay.to_string(), "relay");
    }
}
