//! Radio energy accounting.
//!
//! The FireFly node's energy budget is dominated by the CC2420 radio; the
//! paper's MAC comparison (RT-Link vs B-MAC vs S-MAC) is entirely a story
//! about how long the radio spends in each state. [`EnergyMeter`] integrates
//! state × time × current into consumed charge, which [`crate::Battery`]
//! converts into lifetime.

use std::fmt;

use evm_sim::{SimDuration, SimTime};

/// Operating state of the radio (plus the MCU sleep state, which gates the
/// floor current).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RadioState {
    /// Transmitting.
    Tx,
    /// Actively receiving a frame.
    Rx,
    /// Listening / clear-channel assessment (same draw as Rx on CC2420).
    Listen,
    /// Radio off, MCU awake.
    Idle,
    /// Deep sleep (radio off, MCU asleep, clocks on).
    Sleep,
}

impl RadioState {
    /// All states, for iteration in reports.
    pub const ALL: [RadioState; 5] = [
        RadioState::Tx,
        RadioState::Rx,
        RadioState::Listen,
        RadioState::Idle,
        RadioState::Sleep,
    ];
}

impl fmt::Display for RadioState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RadioState::Tx => "tx",
            RadioState::Rx => "rx",
            RadioState::Listen => "listen",
            RadioState::Idle => "idle",
            RadioState::Sleep => "sleep",
        };
        f.write_str(s)
    }
}

/// Current draw per radio state, in milliamps.
#[derive(Debug, Clone, PartialEq)]
pub struct RadioPowerModel {
    /// Transmit current at the configured power, mA.
    pub tx_ma: f64,
    /// Receive current, mA.
    pub rx_ma: f64,
    /// Listen / CCA current, mA.
    pub listen_ma: f64,
    /// Radio-off MCU-on current, mA.
    pub idle_ma: f64,
    /// Deep-sleep current, mA.
    pub sleep_ma: f64,
}

impl RadioPowerModel {
    /// CC2420 at 0 dBm on a FireFly-class node (datasheet + platform
    /// figures): TX 17.4 mA, RX/listen 19.7 mA, MCU-on floor 1.1 mA,
    /// deep sleep 10 µA.
    #[must_use]
    pub fn cc2420() -> Self {
        RadioPowerModel {
            tx_ma: 17.4,
            rx_ma: 19.7,
            listen_ma: 19.7,
            idle_ma: 1.1,
            sleep_ma: 0.010,
        }
    }

    /// Current for a state, mA.
    #[must_use]
    pub fn current_ma(&self, state: RadioState) -> f64 {
        match state {
            RadioState::Tx => self.tx_ma,
            RadioState::Rx => self.rx_ma,
            RadioState::Listen => self.listen_ma,
            RadioState::Idle => self.idle_ma,
            RadioState::Sleep => self.sleep_ma,
        }
    }
}

impl Default for RadioPowerModel {
    fn default() -> Self {
        RadioPowerModel::cc2420()
    }
}

/// Integrates radio-state residency into consumed charge.
///
/// Drive it either with explicit durations ([`EnergyMeter::add`]) or as a
/// state machine with timestamps ([`EnergyMeter::transition`]).
///
/// # Example
///
/// ```
/// use evm_netsim::{EnergyMeter, RadioPowerModel, RadioState};
/// use evm_sim::SimDuration;
///
/// let mut m = EnergyMeter::new(RadioPowerModel::cc2420());
/// m.add(RadioState::Rx, SimDuration::from_secs(3600));
/// assert!((m.consumed_mah() - 19.7).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    model: RadioPowerModel,
    /// Accumulated time per state, µs (indexed like `RadioState::ALL`).
    state_us: [u64; 5],
    /// Current state and the time it was entered, when driven as a state
    /// machine.
    current: Option<(RadioState, SimTime)>,
}

fn state_index(s: RadioState) -> usize {
    match s {
        RadioState::Tx => 0,
        RadioState::Rx => 1,
        RadioState::Listen => 2,
        RadioState::Idle => 3,
        RadioState::Sleep => 4,
    }
}

impl EnergyMeter {
    /// Creates a meter with the given power model.
    #[must_use]
    pub fn new(model: RadioPowerModel) -> Self {
        EnergyMeter {
            model,
            state_us: [0; 5],
            current: None,
        }
    }

    /// Adds `dur` of residency in `state`.
    pub fn add(&mut self, state: RadioState, dur: SimDuration) {
        self.state_us[state_index(state)] += dur.as_micros();
    }

    /// State-machine driving: enter `state` at time `now`, accounting the
    /// residency in the previous state. The first call only sets the state.
    pub fn transition(&mut self, now: SimTime, state: RadioState) {
        if let Some((prev, since)) = self.current {
            self.add(prev, now.saturating_since(since));
        }
        self.current = Some((state, now));
    }

    /// Closes out the state machine at `now` (accounts the residency of the
    /// last open state without entering a new one).
    pub fn finish(&mut self, now: SimTime) {
        if let Some((prev, since)) = self.current.take() {
            self.add(prev, now.saturating_since(since));
        }
    }

    /// Total accounted time in `state`.
    #[must_use]
    pub fn time_in(&self, state: RadioState) -> SimDuration {
        SimDuration::from_micros(self.state_us[state_index(state)])
    }

    /// Total accounted time across all states.
    #[must_use]
    pub fn total_time(&self) -> SimDuration {
        SimDuration::from_micros(self.state_us.iter().sum())
    }

    /// Consumed charge in mAh.
    #[must_use]
    pub fn consumed_mah(&self) -> f64 {
        RadioState::ALL
            .iter()
            .map(|&s| {
                let hours = self.state_us[state_index(s)] as f64 / 3.6e9;
                self.model.current_ma(s) * hours
            })
            .sum()
    }

    /// Average current over the accounted span, mA. Zero if nothing was
    /// accounted.
    #[must_use]
    pub fn average_current_ma(&self) -> f64 {
        let total_h = self.total_time().as_secs_f64() / 3600.0;
        if total_h == 0.0 {
            0.0
        } else {
            self.consumed_mah() / total_h
        }
    }

    /// Fraction of accounted time with the radio active (TX/RX/listen).
    #[must_use]
    pub fn radio_duty_cycle(&self) -> f64 {
        let total = self.total_time().as_micros();
        if total == 0 {
            return 0.0;
        }
        let active = self.state_us[0] + self.state_us[1] + self.state_us[2];
        active as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_per_state() {
        let mut m = EnergyMeter::new(RadioPowerModel::cc2420());
        m.add(RadioState::Tx, SimDuration::from_secs(1800)); // 0.5 h
        m.add(RadioState::Sleep, SimDuration::from_secs(1800));
        let expect = 17.4 * 0.5 + 0.010 * 0.5;
        assert!((m.consumed_mah() - expect).abs() < 1e-9);
        assert!((m.average_current_ma() - expect).abs() < 1e-9);
    }

    #[test]
    fn state_machine_driving() {
        let mut m = EnergyMeter::new(RadioPowerModel::cc2420());
        m.transition(SimTime::ZERO, RadioState::Listen);
        m.transition(SimTime::from_secs(10), RadioState::Sleep);
        m.finish(SimTime::from_secs(100));
        assert_eq!(m.time_in(RadioState::Listen), SimDuration::from_secs(10));
        assert_eq!(m.time_in(RadioState::Sleep), SimDuration::from_secs(90));
        assert!((m.radio_duty_cycle() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn duty_cycle_counts_only_radio_states() {
        let mut m = EnergyMeter::new(RadioPowerModel::cc2420());
        m.add(RadioState::Tx, SimDuration::from_secs(1));
        m.add(RadioState::Rx, SimDuration::from_secs(1));
        m.add(RadioState::Idle, SimDuration::from_secs(2));
        assert!((m.radio_duty_cycle() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_meter_is_zero() {
        let m = EnergyMeter::new(RadioPowerModel::cc2420());
        assert_eq!(m.consumed_mah(), 0.0);
        assert_eq!(m.average_current_ma(), 0.0);
        assert_eq!(m.radio_duty_cycle(), 0.0);
    }

    #[test]
    fn model_currents_exposed() {
        let model = RadioPowerModel::cc2420();
        assert_eq!(model.current_ma(RadioState::Rx), model.rx_ma);
        assert!(model.current_ma(RadioState::Sleep) < model.current_ma(RadioState::Idle));
    }
}
