//! Wireless sensor-actuator-controller (WSAC) network substrate.
//!
//! Models the physical layer of the paper's testbed — FireFly nodes with
//! CC2420 IEEE 802.15.4 radios — at the level of fidelity the EVM algorithms
//! can observe:
//!
//! * [`node`] — node identities, kinds (sensor / actuator / controller /
//!   gateway) and planar positions,
//! * [`topology`] — deployments, connectivity and k-hop neighborhoods,
//! * [`channel`] — log-distance path loss, SNR → packet-error-rate, and
//!   per-link [`gilbert`] burst-loss processes,
//! * [`frame`] — 802.15.4 frame sizing and airtime at 250 kbps,
//! * [`energy`] — CC2420 radio-state currents, charge metering, and the
//!   2×AA [`battery`] lifetime model used by the MAC comparison experiments,
//! * [`fault`] — node-crash and link-blackout injectors driving the
//!   fault-tolerance experiments.
//!
//! Everything is deterministic given a [`evm_sim::SimRng`] seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod channel;
pub mod energy;
pub mod fault;
pub mod frame;
pub mod gilbert;
pub mod node;
pub mod topology;

pub use battery::Battery;
pub use channel::{BurstSlot, Channel, ChannelConfig, LinkBudget};
pub use energy::{EnergyMeter, RadioPowerModel, RadioState};
pub use fault::{FaultPlan, LinkBlackout, NodeCrash};
pub use frame::{Frame, FrameKind, PHY_HEADER_BYTES, RADIO_BITRATE_BPS};
pub use gilbert::GilbertElliott;
pub use node::{NodeId, NodeInfo, NodeKind, Position};
pub use topology::Topology;
