//! Radio channel: path loss, SNR → packet error rate, and per-link burst
//! loss.
//!
//! The propagation model is the standard log-distance model with optional
//! log-normal shadowing; bit errors follow the IEEE 802.15.4 O-QPSK DSSS
//! BER curve (the same closed form used by ns-2 and Castalia), and packet
//! error rate follows from frame length. On top of that, each directed link
//! runs a [`GilbertElliott`] process so that losses exhibit realistic
//! bursts.

use std::collections::HashMap;

use evm_sim::SimRng;

use crate::frame::Frame;
use crate::gilbert::GilbertElliott;
use crate::node::NodeId;

/// Channel and radio parameters.
#[derive(Debug, Clone)]
pub struct ChannelConfig {
    /// Transmit power in dBm (CC2420 maximum is 0 dBm).
    pub tx_power_dbm: f64,
    /// Path loss at the reference distance of 1 m, in dB.
    pub path_loss_ref_db: f64,
    /// Path-loss exponent (2 = free space, 2.5–4 indoor/industrial).
    pub path_loss_exp: f64,
    /// Standard deviation of log-normal shadowing, in dB (0 disables).
    pub shadowing_sigma_db: f64,
    /// Noise floor in dBm.
    pub noise_floor_dbm: f64,
    /// Links with expected PER above this are considered disconnected for
    /// topology purposes.
    pub connect_per_threshold: f64,
    /// Default burst-loss process cloned onto each new link.
    pub burst: GilbertElliott,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            tx_power_dbm: 0.0,
            path_loss_ref_db: 40.0,
            path_loss_exp: 3.0,
            shadowing_sigma_db: 0.0,
            noise_floor_dbm: -95.0,
            connect_per_threshold: 0.1,
            burst: GilbertElliott::ideal(),
        }
    }
}

impl ChannelConfig {
    /// An industrial-plant-like preset: stronger attenuation, mild
    /// shadowing, and bursty links.
    #[must_use]
    pub fn industrial() -> Self {
        ChannelConfig {
            path_loss_exp: 3.3,
            shadowing_sigma_db: 2.0,
            burst: GilbertElliott::new(0.01, 0.2, 0.0, 0.6),
            ..ChannelConfig::default()
        }
    }
}

/// The deterministic per-link half of [`Channel::sample_delivery`],
/// precomputed once per epoch: the bit error rate implied by the link's
/// SNR at its (fixed) distance. [`Channel::sample_delivery_budget`]
/// re-derives the frame-length-dependent PER from it with exactly the
/// arithmetic [`Channel::packet_error_rate`] uses, so a budgeted sample
/// is bit-identical to the unbudgeted one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBudget {
    ber: f64,
}

/// An interned handle to one directed link's burst-process state — a
/// dense index resolved once (per epoch, by the cycle-plan compiler)
/// so the delivery hot path reaches the state with an array read
/// instead of hashing the link pair on every sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstSlot(u32);

/// The shared radio medium.
///
/// Stateless with respect to node positions (those live in the topology);
/// stateful per directed link for shadowing realizations and burst
/// processes, so the same link keeps the same character over a run.
/// Burst states live in a dense pool reached through the link-pair
/// index; interning a link ([`Channel::burst_slot`]) draws no RNG and
/// creates the same default state lazy first use would, so eager
/// interning never perturbs a run.
#[derive(Debug)]
pub struct Channel {
    config: ChannelConfig,
    /// Frozen shadowing realization per (src, dst) pair.
    shadowing_db: HashMap<(NodeId, NodeId), f64>,
    /// Burst-state pool index per (src, dst) pair.
    burst_index: HashMap<(NodeId, NodeId), u32>,
    /// The burst states, dense; reached via `burst_index` or an
    /// interned [`BurstSlot`].
    burst_states: Vec<GilbertElliott>,
    rng: SimRng,
}

impl Channel {
    /// Creates a channel with its own random stream.
    #[must_use]
    pub fn new(config: ChannelConfig, rng: SimRng) -> Self {
        Channel {
            config,
            shadowing_db: HashMap::new(),
            burst_index: HashMap::new(),
            burst_states: Vec::new(),
            rng,
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// Received power in dBm at distance `d` meters (deterministic part +
    /// the link's frozen shadowing realization).
    pub fn received_power_dbm(&mut self, link: (NodeId, NodeId), d: f64) -> f64 {
        let d = d.max(1.0);
        let pl = self.config.path_loss_ref_db + 10.0 * self.config.path_loss_exp * d.log10();
        let sigma = self.config.shadowing_sigma_db;
        let shadow = if sigma > 0.0 {
            let rng = &mut self.rng;
            *self
                .shadowing_db
                .entry(link)
                .or_insert_with(|| rng.normal(0.0, sigma))
        } else {
            0.0
        };
        self.config.tx_power_dbm - pl + shadow
    }

    /// Signal-to-noise ratio in dB on `link` at distance `d`.
    pub fn snr_db(&mut self, link: (NodeId, NodeId), d: f64) -> f64 {
        self.received_power_dbm(link, d) - self.config.noise_floor_dbm
    }

    /// Expected packet error rate for an `air_bytes`-byte frame on `link`
    /// at distance `d` (before burst losses).
    pub fn packet_error_rate(&mut self, link: (NodeId, NodeId), d: f64, air_bytes: usize) -> f64 {
        let snr = self.snr_db(link, d);
        let ber = oqpsk_ber(snr);
        1.0 - (1.0 - ber).powi((air_bytes * 8) as i32)
    }

    /// `true` if the link would be considered usable by the topology layer.
    pub fn is_connected(&mut self, link: (NodeId, NodeId), d: f64) -> bool {
        // Judged on a full-size frame, the worst case.
        self.packet_error_rate(
            link,
            d,
            crate::frame::MAX_FRAME_BYTES + crate::frame::PHY_HEADER_BYTES,
        ) <= self.config.connect_per_threshold
    }

    /// Samples whether a concrete transmission of `frame` from its source to
    /// `dst` (at distance `d`) is received.
    ///
    /// Combines the SNR-based PER with the link's burst process.
    pub fn sample_delivery(&mut self, frame: &Frame, dst: NodeId, d: f64) -> bool {
        let link = (frame.src, dst);
        let per = self.packet_error_rate(link, d, frame.air_bytes());
        if self.rng.chance(per) {
            return false;
        }
        let ix = self.burst_ix(link);
        !self.burst_states[ix].sample_loss(&mut self.rng)
    }

    /// The pool slot of `link`'s burst state, interning it (with the
    /// config's default process) on first sight. Creation draws no RNG,
    /// so interning early is indistinguishable from lazy first use.
    fn burst_ix(&mut self, link: (NodeId, NodeId)) -> usize {
        use std::collections::hash_map::Entry;
        match self.burst_index.entry(link) {
            Entry::Occupied(e) => *e.get() as usize,
            Entry::Vacant(v) => {
                let ix = self.burst_states.len();
                v.insert(u32::try_from(ix).expect("burst pool fits u32"));
                self.burst_states.push(self.config.burst.clone());
                ix
            }
        }
    }

    /// Interns `link`'s burst state and returns its dense handle, for
    /// hot paths that sample the same link every cycle
    /// ([`Channel::sample_delivery_budget`]).
    pub fn burst_slot(&mut self, link: (NodeId, NodeId)) -> BurstSlot {
        BurstSlot(u32::try_from(self.burst_ix(link)).expect("burst pool fits u32"))
    }

    /// Precomputes the deterministic half of [`sample_delivery`] for a link
    /// at a fixed distance.
    ///
    /// Returns `None` when shadowing is enabled: the shadowing realization
    /// is drawn lazily from the channel RNG on first use of a link, so
    /// resolving it eagerly here would reorder draws relative to the
    /// unbudgeted path. Callers must fall back to [`sample_delivery`] for
    /// those links.
    ///
    /// [`sample_delivery`]: Channel::sample_delivery
    pub fn link_budget(&mut self, link: (NodeId, NodeId), d: f64) -> Option<LinkBudget> {
        if self.config.shadowing_sigma_db > 0.0 {
            return None;
        }
        Some(LinkBudget {
            ber: oqpsk_ber(self.snr_db(link, d)),
        })
    }

    /// [`sample_delivery`] with the deterministic per-link terms taken from
    /// a precomputed [`LinkBudget`]: only the frame-length-dependent PER is
    /// derived here, then the identical RNG draw sequence runs (PER chance,
    /// then the link's burst process).
    ///
    /// [`sample_delivery`]: Channel::sample_delivery
    pub fn sample_delivery_budget(
        &mut self,
        slot: BurstSlot,
        budget: LinkBudget,
        air_bytes: usize,
    ) -> bool {
        let per = 1.0 - (1.0 - budget.ber).powi((air_bytes * 8) as i32);
        if self.rng.chance(per) {
            return false;
        }
        !self.burst_states[slot.0 as usize].sample_loss(&mut self.rng)
    }

    /// Replaces the burst process of one directed link (used by fault
    /// injection to degrade a specific link mid-run).
    pub fn set_link_burst(&mut self, link: (NodeId, NodeId), process: GilbertElliott) {
        let ix = self.burst_ix(link);
        self.burst_states[ix] = process;
    }
}

/// BER of IEEE 802.15.4 O-QPSK with DSSS as a function of SNR in dB.
///
/// Closed form from the 802.15.4 standard (also used by ns-2 / Castalia):
///
/// `BER = 8/15 · 1/16 · Σ_{k=2..16} (−1)^k C(16,k) exp(20·SNR·(1/k − 1))`
#[must_use]
pub fn oqpsk_ber(snr_db: f64) -> f64 {
    let snr = 10f64.powf(snr_db / 10.0);
    let mut sum = 0.0;
    for k in 2..=16u32 {
        let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
        sum += sign * binomial(16, k) * (20.0 * snr * (1.0 / k as f64 - 1.0)).exp();
    }
    ((8.0 / 15.0) * (1.0 / 16.0) * sum).clamp(0.0, 0.5)
}

fn binomial(n: u32, k: u32) -> f64 {
    let mut r = 1.0;
    for i in 0..k {
        r *= (n - i) as f64 / (i + 1) as f64;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameKind;

    fn ch() -> Channel {
        Channel::new(ChannelConfig::default(), SimRng::seed_from(7))
    }

    #[test]
    fn ber_is_monotone_decreasing_in_snr() {
        let mut prev = oqpsk_ber(-10.0);
        for snr10 in -95..100 {
            let b = oqpsk_ber(snr10 as f64 / 10.0);
            assert!(b <= prev + 1e-15, "BER not monotone at {snr10}");
            prev = b;
        }
    }

    #[test]
    fn ber_extremes() {
        assert!(oqpsk_ber(10.0) < 1e-9, "high SNR should be error-free");
        assert!(oqpsk_ber(-10.0) > 0.1, "low SNR should be lossy");
    }

    #[test]
    fn per_increases_with_distance() {
        let mut c = ch();
        let link = (NodeId(1), NodeId(2));
        let near = c.packet_error_rate(link, 5.0, 50);
        let far = c.packet_error_rate(link, 80.0, 50);
        assert!(near < far, "near {near} far {far}");
    }

    #[test]
    fn per_increases_with_length() {
        let mut c = ch();
        let link = (NodeId(1), NodeId(2));
        let short = c.packet_error_rate(link, 45.0, 20);
        let long = c.packet_error_rate(link, 45.0, 120);
        assert!(short < long, "short {short} long {long}");
    }

    #[test]
    fn close_links_connect_far_links_do_not() {
        let mut c = ch();
        assert!(c.is_connected((NodeId(1), NodeId(2)), 10.0));
        assert!(!c.is_connected((NodeId(1), NodeId(3)), 500.0));
    }

    #[test]
    fn shadowing_is_frozen_per_link() {
        let mut c = Channel::new(
            ChannelConfig {
                shadowing_sigma_db: 6.0,
                ..ChannelConfig::default()
            },
            SimRng::seed_from(9),
        );
        let link = (NodeId(1), NodeId(2));
        let a = c.received_power_dbm(link, 20.0);
        let b = c.received_power_dbm(link, 20.0);
        assert_eq!(a, b, "same link must keep its shadowing realization");
        let other = c.received_power_dbm((NodeId(1), NodeId(3)), 20.0);
        assert_ne!(a, other, "different links get different realizations");
    }

    #[test]
    fn delivery_sampling_respects_ideal_close_link() {
        let mut c = ch();
        let f = Frame::new(NodeId(1), FrameKind::Unicast(NodeId(2)), 8, 0);
        let delivered = (0..1000)
            .filter(|_| c.sample_delivery(&f, NodeId(2), 5.0))
            .count();
        assert_eq!(delivered, 1000, "5 m ideal link should never drop");
    }

    #[test]
    fn degraded_link_drops() {
        let mut c = ch();
        c.set_link_burst((NodeId(1), NodeId(2)), GilbertElliott::bernoulli(1.0));
        let f = Frame::new(NodeId(1), FrameKind::Unicast(NodeId(2)), 8, 0);
        assert!(!c.sample_delivery(&f, NodeId(2), 5.0));
    }

    #[test]
    fn budgeted_delivery_matches_unbudgeted_draw_for_draw() {
        let mut direct = Channel::new(ChannelConfig::default(), SimRng::seed_from(31));
        let mut planned = Channel::new(ChannelConfig::default(), SimRng::seed_from(31));
        let link = (NodeId(1), NodeId(2));
        let budget = planned
            .link_budget(link, 42.0)
            .expect("no shadowing: budget must exist");
        let slot = planned.burst_slot(link);
        let f = Frame::new(NodeId(1), FrameKind::Broadcast, 8, 0);
        for i in 0..500 {
            let a = direct.sample_delivery(&f, NodeId(2), 42.0);
            let b = planned.sample_delivery_budget(slot, budget, f.air_bytes());
            assert_eq!(a, b, "draw {i} diverged");
        }
    }

    #[test]
    fn shadowed_links_have_no_budget() {
        let mut c = Channel::new(ChannelConfig::industrial(), SimRng::seed_from(5));
        assert!(c.link_budget((NodeId(1), NodeId(2)), 10.0).is_none());
    }

    #[test]
    fn per_in_unit_interval_over_random_links() {
        let mut rng = SimRng::seed_from(0xCAB1E);
        for _ in 0..512 {
            let d = rng.range(1.0, 1000.0);
            let bytes = 1 + rng.index(133);
            let mut c = ch();
            let per = c.packet_error_rate((NodeId(1), NodeId(2)), d, bytes);
            assert!(
                (0.0..=1.0).contains(&per),
                "PER {per} at d={d} bytes={bytes}"
            );
        }
    }
}
