//! Gilbert–Elliott two-state burst-loss process.
//!
//! Wireless links do not drop packets independently: losses cluster in
//! bursts (fading, interference). The Gilbert–Elliott chain is the standard
//! minimal model: a *Good* state with low loss and a *Bad* state with high
//! loss, with geometric sojourn times. The EVM's fault-detection logic is
//! sensitive to exactly this burstiness — a burst of lost health reports
//! must not be confused with a controller fault — so the channel model
//! exposes it directly.

use evm_sim::SimRng;

/// State of the Gilbert–Elliott chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GeState {
    Good,
    Bad,
}

/// A two-state Markov burst-loss process.
///
/// # Example
///
/// ```
/// use evm_netsim::GilbertElliott;
/// use evm_sim::SimRng;
///
/// let mut rng = SimRng::seed_from(1);
/// let mut link = GilbertElliott::new(0.01, 0.3, 0.0, 0.8);
/// let losses = (0..1000).filter(|_| link.sample_loss(&mut rng)).count();
/// assert!(losses > 0 && losses < 300);
/// ```
#[derive(Debug, Clone)]
pub struct GilbertElliott {
    /// P(Good -> Bad) per packet.
    p_gb: f64,
    /// P(Bad -> Good) per packet.
    p_bg: f64,
    /// Loss probability while Good.
    loss_good: f64,
    /// Loss probability while Bad.
    loss_bad: f64,
    state: GeState,
}

impl GilbertElliott {
    /// Creates a burst-loss process.
    ///
    /// * `p_gb` — per-packet probability of entering the bad state,
    /// * `p_bg` — per-packet probability of recovering,
    /// * `loss_good` / `loss_bad` — loss rates within each state.
    ///
    /// # Panics
    ///
    /// Panics if any argument is outside `[0, 1]`.
    #[must_use]
    pub fn new(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64) -> Self {
        for (name, v) in [
            ("p_gb", p_gb),
            ("p_bg", p_bg),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} out of [0,1]: {v}");
        }
        GilbertElliott {
            p_gb,
            p_bg,
            loss_good,
            loss_bad,
            state: GeState::Good,
        }
    }

    /// A process that never loses packets (ideal link).
    #[must_use]
    pub fn ideal() -> Self {
        GilbertElliott::new(0.0, 1.0, 0.0, 0.0)
    }

    /// A memoryless (Bernoulli) loss process with rate `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn bernoulli(p: f64) -> Self {
        GilbertElliott::new(0.0, 1.0, p, p)
    }

    /// Advances the chain by one packet and samples whether that packet is
    /// lost.
    pub fn sample_loss(&mut self, rng: &mut SimRng) -> bool {
        // Transition first, then sample loss in the new state.
        self.state = match self.state {
            GeState::Good if rng.chance(self.p_gb) => GeState::Bad,
            GeState::Bad if rng.chance(self.p_bg) => GeState::Good,
            s => s,
        };
        let p = match self.state {
            GeState::Good => self.loss_good,
            GeState::Bad => self.loss_bad,
        };
        rng.chance(p)
    }

    /// Long-run average loss probability implied by the parameters.
    #[must_use]
    pub fn steady_state_loss(&self) -> f64 {
        let denom = self.p_gb + self.p_bg;
        if denom == 0.0 {
            // Chain never moves; stays Good forever.
            return self.loss_good;
        }
        let pi_bad = self.p_gb / denom;
        (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad
    }

    /// `true` if the chain is currently in the bad (bursty) state.
    #[must_use]
    pub fn in_burst(&self) -> bool {
        self.state == GeState::Bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_never_loses() {
        let mut rng = SimRng::seed_from(2);
        let mut link = GilbertElliott::ideal();
        assert!((0..10_000).all(|_| !link.sample_loss(&mut rng)));
    }

    #[test]
    fn bernoulli_rate_matches() {
        let mut rng = SimRng::seed_from(3);
        let mut link = GilbertElliott::bernoulli(0.2);
        let n = 100_000;
        let losses = (0..n).filter(|_| link.sample_loss(&mut rng)).count();
        let rate = losses as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn empirical_matches_steady_state() {
        let mut rng = SimRng::seed_from(4);
        let mut link = GilbertElliott::new(0.02, 0.25, 0.01, 0.7);
        let expect = link.steady_state_loss();
        let n = 200_000;
        let losses = (0..n).filter(|_| link.sample_loss(&mut rng)).count();
        let rate = losses as f64 / n as f64;
        assert!((rate - expect).abs() < 0.01, "rate {rate} vs {expect}");
    }

    #[test]
    fn losses_are_bursty() {
        // With strongly separated states, consecutive-loss runs must be much
        // longer than under an equal-rate Bernoulli process.
        let mut rng = SimRng::seed_from(5);
        let mut link = GilbertElliott::new(0.005, 0.05, 0.0, 0.95);
        let mut max_run = 0usize;
        let mut run = 0usize;
        for _ in 0..100_000 {
            if link.sample_loss(&mut rng) {
                run += 1;
                max_run = max_run.max(run);
            } else {
                run = 0;
            }
        }
        assert!(max_run >= 10, "expected long bursts, max run {max_run}");
    }

    #[test]
    fn frozen_chain_steady_state() {
        let link = GilbertElliott::new(0.0, 0.0, 0.05, 0.9);
        assert_eq!(link.steady_state_loss(), 0.05);
    }

    #[test]
    fn steady_state_in_unit_interval_over_random_chains() {
        let mut rng = SimRng::seed_from(0x6E1);
        for _ in 0..1_000 {
            let link =
                GilbertElliott::new(rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform());
            let s = link.steady_state_loss();
            assert!((0.0..=1.0).contains(&s), "steady-state loss {s}");
        }
        // Boundary chains as well (uniform() never draws exactly 1.0).
        for (p_gb, p_bg, lg, lb) in [
            (0.0, 0.0, 0.0, 1.0),
            (1.0, 0.0, 1.0, 1.0),
            (0.0, 1.0, 0.0, 0.0),
            (1.0, 1.0, 1.0, 0.0),
        ] {
            let s = GilbertElliott::new(p_gb, p_bg, lg, lb).steady_state_loss();
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
