//! Node identities, kinds and positions.

use std::fmt;

/// Identifier of a physical node in the deployment.
///
/// Newtype over `u16` to match the 802.15.4 short-address width used by the
/// FireFly platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Conventional gateway address (mirrors the coordinator short address).
    pub const GATEWAY: NodeId = NodeId(0);

    /// The raw address.
    #[must_use]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// Index form for dense per-node tables.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// The functional role of a node in the wireless control network (Fig. 1a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Samples plant variables and publishes them.
    Sensor,
    /// Drives a final control element (e.g. a valve).
    Actuator,
    /// Executes control tasks; candidate host for EVM capsules.
    Controller,
    /// Bridges the wireless network to the plant interface (ModBus in
    /// Fig. 5).
    Gateway,
    /// Pure store-and-forward node: extends a Virtual Component's reach
    /// beyond one radio hop (multi-hop line / grid / clustered layouts).
    Relay,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Sensor => "sensor",
            NodeKind::Actuator => "actuator",
            NodeKind::Controller => "controller",
            NodeKind::Gateway => "gateway",
            NodeKind::Relay => "relay",
        };
        f.write_str(s)
    }
}

/// Planar position in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// X coordinate in meters.
    pub x: f64,
    /// Y coordinate in meters.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    #[must_use]
    pub fn distance_to(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// Static description of one deployed node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeInfo {
    /// The node's address.
    pub id: NodeId,
    /// Functional role.
    pub kind: NodeKind,
    /// Location in the deployment plane.
    pub position: Position,
    /// Human-readable label, e.g. `"Ctrl-A"`.
    pub label: String,
}

impl NodeInfo {
    /// Creates a node description.
    #[must_use]
    pub fn new(id: NodeId, kind: NodeKind, position: Position, label: impl Into<String>) -> Self {
        NodeInfo {
            id,
            kind,
            position,
            label: label.into(),
        }
    }
}

impl fmt::Display for NodeInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} {} @ {}]",
            self.label, self.id, self.kind, self.position
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_conversions() {
        let id: NodeId = 7u16.into();
        assert_eq!(id.to_string(), "n7");
        assert_eq!(id.raw(), 7);
        assert_eq!(id.index(), 7);
        assert_eq!(NodeId::GATEWAY, NodeId(0));
    }

    #[test]
    fn distance_is_euclidean() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance_to(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_to(&a), 0.0);
    }

    #[test]
    fn node_info_display() {
        let n = NodeInfo::new(
            NodeId(3),
            NodeKind::Controller,
            Position::new(1.0, 2.0),
            "Ctrl-A",
        );
        let s = n.to_string();
        assert!(s.contains("Ctrl-A") && s.contains("controller") && s.contains("n3"));
    }
}
