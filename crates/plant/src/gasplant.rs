//! The natural-gas processing plant of Fig. 4.
//!
//! Flow path: combined raw-gas feed → **Inlet Separator** (free liquids
//! out) → overhead gas → **gas/gas exchanger** (pre-cooled against the
//! cold LTS overhead) → **propane chiller** → **Low-Temperature
//! Separator**; LTS overhead returns through the exchanger as sales gas,
//! LTS liquid joins the Inlet Separator liquid and feeds the
//! **Depropanizer**.
//!
//! # Calibration
//!
//! The constructor solves the steady-state flashes once and sizes every
//! valve so the nominal operating point matches the paper: the LTS liquid
//! valve sits at **11.48 %** (the value the faulty controller should output
//! in Fig. 6b), the other valves at mid-range. Vessel levels start at
//! their 50 % setpoints.

use std::collections::HashMap;

use crate::blocks::{Chiller, Depropanizer, GasGasExchanger, Separator, Valve};
use crate::stream::Stream;
use crate::thermo::{flash, Composition};
use crate::Plant;

/// Plant sizing and operating parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantConfig {
    /// Combined raw-gas feed rate, kmol/h.
    pub feed_kmolh: f64,
    /// Feed temperature, K.
    pub feed_t_k: f64,
    /// Feed pressure, kPa.
    pub feed_p_kpa: f64,
    /// LTS operating (chiller target) temperature, K.
    pub lts_t_k: f64,
    /// LTS pressure, kPa.
    pub lts_p_kpa: f64,
    /// Gas/gas exchanger effectiveness.
    pub hx_effectiveness: f64,
    /// Nominal LTS liquid-valve opening — the paper's 11.48 %.
    pub lts_valve_nominal_pct: f64,
    /// Inlet separator liquid-section volume, m³.
    pub sep_volume_m3: f64,
    /// LTS liquid-section volume, m³.
    pub lts_volume_m3: f64,
    /// Valve actuator time constant, s.
    pub valve_tau_s: f64,
    /// Column nominal pressure, kPa.
    pub column_p_kpa: f64,
}

impl Default for PlantConfig {
    fn default() -> Self {
        PlantConfig {
            feed_kmolh: 1440.0,
            feed_t_k: 303.15, // 30 C
            feed_p_kpa: 6200.0,
            lts_t_k: 253.15, // -20 C
            lts_p_kpa: 6000.0,
            hx_effectiveness: 0.6,
            lts_valve_nominal_pct: 11.48,
            sep_volume_m3: 3.0,
            lts_volume_m3: 5.0,
            valve_tau_s: 2.0,
            column_p_kpa: 1400.0,
        }
    }
}

/// The running plant model.
#[derive(Debug, Clone)]
pub struct GasPlant {
    config: PlantConfig,

    inlet_sep: Separator,
    lts: Separator,
    hx: GasGasExchanger,
    chiller: Chiller,
    column: Depropanizer,

    sep_liq_valve: Valve,
    lts_liq_valve: Valve,
    chiller_valve: Valve,
    sales_valve: Valve,
    bottoms_valve: Valve,
    distillate_valve: Valve,
    reboiler_duty_pct: f64,
    condenser_duty_pct: f64,

    /// LTS overhead from the previous step (recycle stream through the
    /// exchanger, one-step delay for a stable explicit solution).
    lts_vapor_prev: Stream,

    /// Tag name → slot in `tag_values`. Assigned on first publish and
    /// stable for the life of the plant, so a [`BoundTag`] handle stays
    /// valid across steps.
    tag_index: HashMap<String, usize>,
    /// Latest published measurements, indexed by `tag_index`.
    tag_values: Vec<f64>,
    /// Elapsed simulation time, s.
    elapsed_s: f64,
}

/// A pre-resolved handle to one published plant tag.
///
/// Obtained from [`GasPlant::bind_tag`] once, then read with
/// [`GasPlant::read_bound`] without the per-read string hash of
/// [`Plant::read_tag`]. Handles never go stale: tag slots are append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundTag(usize);

impl GasPlant {
    /// Builds and calibrates the plant at its steady operating point.
    #[must_use]
    pub fn new(config: PlantConfig) -> Self {
        let feed_comp = Composition::raw_natural_gas();

        // --- Steady-state calibration (two flashes) -------------------
        let inlet_flash = flash(&feed_comp, config.feed_t_k, config.feed_p_kpa);
        let sep_liq_ss = config.feed_kmolh * (1.0 - inlet_flash.vapor_fraction);
        let overhead_ss = config.feed_kmolh * inlet_flash.vapor_fraction;

        let lts_flash = flash(&inlet_flash.vapor, config.lts_t_k, config.lts_p_kpa);
        let lts_liq_ss = overhead_ss * (1.0 - lts_flash.vapor_fraction);
        let sales_ss = overhead_ss * lts_flash.vapor_fraction;

        // Valve sizing from nominal openings.
        let sep_liq_valve = Valve::new(sep_liq_ss / 0.50, config.valve_tau_s, 50.0);
        let lts_liq_valve = Valve::new(
            lts_liq_ss / (config.lts_valve_nominal_pct / 100.0),
            config.valve_tau_s,
            config.lts_valve_nominal_pct,
        );
        let sales_valve = Valve::new(sales_ss / 0.50, config.valve_tau_s, 50.0);

        // Exchanger + chiller sizing: the chiller closes whatever gap the
        // exchanger leaves to the LTS temperature at nominal valve ~60 %.
        let hx = GasGasExchanger::new(config.hx_effectiveness);
        let c_min = sales_ss.min(overhead_ss);
        let hx_drop =
            config.hx_effectiveness * c_min * (config.feed_t_k - config.lts_t_k) / overhead_ss;
        let hx_out_t = config.feed_t_k - hx_drop;
        let needed_drop = (hx_out_t - config.lts_t_k).max(1.0);
        let chiller = Chiller::new(needed_drop / 0.60, overhead_ss);
        let chiller_valve = Valve::new(100.0, config.valve_tau_s, 60.0);

        // Column: tower feed = both liquid streams.
        let tower_feed_ss = sep_liq_ss + lts_liq_ss;
        let column = Depropanizer::new(config.column_p_kpa, tower_feed_ss * 1.2);
        // Nominal duty 60 %: bottoms keep the butanes + residual C3.
        let bottoms_ss = tower_feed_ss * 0.45;
        let distillate_ss = tower_feed_ss * 0.55;
        let bottoms_valve = Valve::new(bottoms_ss / 0.50, config.valve_tau_s, 50.0);
        let distillate_valve = Valve::new(distillate_ss / 0.50, config.valve_tau_s, 50.0);

        let inlet_sep = Separator::new(
            config.sep_volume_m3,
            config.feed_t_k,
            config.feed_p_kpa,
            50.0,
            inlet_flash.liquid,
        );
        let lts = Separator::new(
            config.lts_volume_m3,
            config.lts_t_k,
            config.lts_p_kpa,
            50.0,
            lts_flash.liquid,
        );

        let lts_vapor_prev =
            Stream::new(sales_ss, config.lts_t_k, config.lts_p_kpa, lts_flash.vapor);

        let mut plant = GasPlant {
            config,
            inlet_sep,
            lts,
            hx,
            chiller,
            column,
            sep_liq_valve,
            lts_liq_valve,
            chiller_valve,
            sales_valve,
            bottoms_valve,
            distillate_valve,
            reboiler_duty_pct: 60.0,
            condenser_duty_pct: 60.0,
            lts_vapor_prev,
            tag_index: HashMap::new(),
            tag_values: Vec::new(),
            elapsed_s: 0.0,
        };
        // Publish a consistent initial tag snapshot.
        plant.step(0.1);
        plant.elapsed_s = 0.0;
        plant
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &PlantConfig {
        &self.config
    }

    /// Elapsed plant time, seconds.
    #[must_use]
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }

    /// Convenience accessor: the LTS liquid level, %.
    #[must_use]
    pub fn lts_level_pct(&self) -> f64 {
        self.lts.level_pct()
    }

    /// Convenience accessor: the LTS liquid valve opening, %.
    #[must_use]
    pub fn lts_valve_pct(&self) -> f64 {
        self.lts_liq_valve.opening_pct()
    }

    fn publish(&mut self, key: &str, value: f64) {
        // Update in place: after the first cycle every tag exists, and
        // re-inserting would re-allocate the key `String` on each step.
        if let Some(&ix) = self.tag_index.get(key) {
            self.tag_values[ix] = value;
        } else {
            self.tag_index
                .insert(key.to_string(), self.tag_values.len());
            self.tag_values.push(value);
        }
    }

    /// Resolves a published tag name to a reusable [`BoundTag`] handle.
    ///
    /// Returns `None` for unknown tags. The constructor publishes a full
    /// snapshot, so every measurement tag is bindable from step zero.
    #[must_use]
    pub fn bind_tag(&self, tag: &str) -> Option<BoundTag> {
        self.tag_index.get(tag).copied().map(BoundTag)
    }

    /// Reads the latest value of a tag through its pre-resolved handle.
    #[must_use]
    pub fn read_bound(&self, slot: BoundTag) -> f64 {
        self.tag_values[slot.0]
    }
}

/// Names of all writable (actuator) tags.
pub const ACTUATOR_TAGS: [&str; 8] = [
    "SepLiqValve.Cmd",
    "LTSLiqValve.Cmd",
    "ChillerValve.Cmd",
    "SalesValve.Cmd",
    "BottomsValve.Cmd",
    "DistillateValve.Cmd",
    "ReboilerDuty.Cmd",
    "CondenserDuty.Cmd",
];

impl Plant for GasPlant {
    fn step(&mut self, dt: f64) {
        assert!(dt > 0.0, "dt must be positive");
        self.elapsed_s += dt;

        // Actuators move first.
        for v in [
            &mut self.sep_liq_valve,
            &mut self.lts_liq_valve,
            &mut self.chiller_valve,
            &mut self.sales_valve,
            &mut self.bottoms_valve,
            &mut self.distillate_valve,
        ] {
            v.step(dt);
        }

        // Feed enters the inlet separator.
        let feed = Stream::new(
            self.config.feed_kmolh,
            self.config.feed_t_k,
            self.config.feed_p_kpa,
            Composition::raw_natural_gas(),
        );
        let inlet_overhead = self.inlet_sep.feed(&feed, dt);

        // Gas/gas exchange against last step's LTS overhead.
        let (hx_hot_out, sales_gas) = self.hx.exchange(&inlet_overhead, &self.lts_vapor_prev);

        // Chiller to LTS temperature (as the refrigerant valve allows).
        let chilled = self
            .chiller
            .cool(&hx_hot_out, self.chiller_valve.opening_pct());

        // The LTS runs at the chilled temperature.
        self.lts.set_t_k(chilled.t_k);
        let lts_vapor = self.lts.feed(&chilled, dt);
        self.lts_vapor_prev = lts_vapor;

        // Liquid draws through the level valves.
        let sep_liq = self
            .inlet_sep
            .draw_liquid(self.sep_liq_valve.flow(f64::MAX), dt);
        let lts_liq = self.lts.draw_liquid(self.lts_liq_valve.flow(f64::MAX), dt);
        let tower_feed = Stream::mix(&sep_liq, &lts_liq);

        // Depropanizer.
        self.column.step(
            &tower_feed,
            self.reboiler_duty_pct,
            self.condenser_duty_pct,
            dt,
        );
        let bottoms = self
            .column
            .draw_bottoms(self.bottoms_valve.flow(f64::MAX), dt);
        let distillate = self
            .column
            .draw_distillate(self.distillate_valve.flow(f64::MAX), dt);

        // Publish measurements (Fig. 6b series first).
        let lts_level = self.lts.level_pct();
        let sep_level = self.inlet_sep.level_pct();
        let chiller_out_t = chilled.t_k;
        let sump = self.column.sump_level_pct();
        let drum = self.column.drum_level_pct();
        let col_p = self.column.pressure_kpa();
        let tray_t = self.column.tray_temp_k(self.reboiler_duty_pct);
        let bott_c3 = self.column.bottoms_propane_frac();
        let lts_liq_in = self.lts.last_liquid_in();
        let sep_liq_in = self.inlet_sep.last_liquid_in();

        self.publish("LTS.LiquidPct", lts_level);
        self.publish("SepLiq.MolarFlow", sep_liq.molar_flow);
        self.publish("LTSLiq.MolarFlow", lts_liq.molar_flow);
        self.publish("TowerFeed.MolarFlow", tower_feed.molar_flow);
        self.publish("InletSep.LevelPct", sep_level);
        self.publish("InletSep.LiqIn", sep_liq_in);
        self.publish("LTS.LiqIn", lts_liq_in);
        self.publish("Chiller.OutletTempK", chiller_out_t);
        self.publish("SalesGas.MolarFlow", sales_gas.molar_flow);
        self.publish("SalesGas.TempK", sales_gas.t_k);
        self.publish("Column.PressureKPa", col_p);
        self.publish("Column.SumpLevelPct", sump);
        self.publish("Column.DrumLevelPct", drum);
        self.publish("Column.TrayTempK", tray_t);
        self.publish("Column.BottomsC3Frac", bott_c3);
        self.publish("Bottoms.MolarFlow", bottoms.molar_flow);
        self.publish("Distillate.MolarFlow", distillate.molar_flow);
        self.publish("SepLiqValve.OpeningPct", self.sep_liq_valve.opening_pct());
        self.publish("LTSLiqValve.OpeningPct", self.lts_liq_valve.opening_pct());
        self.publish("ChillerValve.OpeningPct", self.chiller_valve.opening_pct());
        self.publish("SalesValve.OpeningPct", self.sales_valve.opening_pct());
        self.publish("BottomsValve.OpeningPct", self.bottoms_valve.opening_pct());
        self.publish(
            "DistillateValve.OpeningPct",
            self.distillate_valve.opening_pct(),
        );
        self.publish("ReboilerDuty.Pct", self.reboiler_duty_pct);
        self.publish("CondenserDuty.Pct", self.condenser_duty_pct);
    }

    fn read_tag(&self, tag: &str) -> Option<f64> {
        self.tag_index.get(tag).map(|&ix| self.tag_values[ix])
    }

    fn write_tag(&mut self, tag: &str, value: f64) -> Result<(), String> {
        match tag {
            "SepLiqValve.Cmd" => self.sep_liq_valve.command(value),
            "LTSLiqValve.Cmd" => self.lts_liq_valve.command(value),
            "ChillerValve.Cmd" => self.chiller_valve.command(value),
            "SalesValve.Cmd" => self.sales_valve.command(value),
            "BottomsValve.Cmd" => self.bottoms_valve.command(value),
            "DistillateValve.Cmd" => self.distillate_valve.command(value),
            "ReboilerDuty.Cmd" => self.reboiler_duty_pct = value.clamp(0.0, 100.0),
            "CondenserDuty.Cmd" => self.condenser_duty_pct = value.clamp(0.0, 100.0),
            other if self.tag_index.contains_key(other) => {
                return Err(format!("tag is read-only: {other}"));
            }
            other => return Err(format!("unknown tag: {other}")),
        }
        Ok(())
    }

    fn tags(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tag_index.keys().cloned().collect();
        v.extend(ACTUATOR_TAGS.iter().map(|s| s.to_string()));
        v.sort();
        v.dedup();
        v
    }
}

impl Default for GasPlant {
    fn default() -> Self {
        GasPlant::new(PlantConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_point_matches_paper_operating_point() {
        let p = GasPlant::default();
        assert!((p.lts_valve_pct() - 11.48).abs() < 1e-6);
        assert!((p.lts_level_pct() - 50.0).abs() < 1.0);
    }

    #[test]
    fn steady_state_is_roughly_self_consistent() {
        // With valves frozen at their calibrated openings, the level drift
        // over 10 minutes should be small: the calibration balances
        // condensation against valve draw.
        let mut p = GasPlant::default();
        for _ in 0..6000 {
            p.step(0.1);
        }
        let lvl = p.lts_level_pct();
        assert!(
            (lvl - 50.0).abs() < 20.0,
            "open-loop drift too fast: level {lvl}"
        );
        let lts_liq = p.read_tag("LTSLiq.MolarFlow").unwrap();
        let lts_in = p.read_tag("LTS.LiqIn").unwrap();
        assert!(
            (lts_liq - lts_in).abs() / lts_in < 0.25,
            "draw {lts_liq} vs condensation {lts_in}"
        );
    }

    #[test]
    fn forcing_valve_open_drains_the_lts() {
        // The Fig. 6b fault: valve to 75 % -> rapid level drop.
        let mut p = GasPlant::default();
        p.write_tag("LTSLiqValve.Cmd", 75.0).unwrap();
        let l0 = p.lts_level_pct();
        for _ in 0..1500 {
            p.step(0.1); // 150 s
        }
        let l1 = p.lts_level_pct();
        assert!(l1 < l0 - 25.0, "expected rapid drain: {l0} -> {l1}");
        // And the drawn flow spiked well above the condensation rate.
    }

    #[test]
    fn closing_valve_fills_the_lts() {
        let mut p = GasPlant::default();
        p.write_tag("LTSLiqValve.Cmd", 0.0).unwrap();
        let l0 = p.lts_level_pct();
        for _ in 0..1500 {
            p.step(0.1);
        }
        assert!(p.lts_level_pct() > l0 + 5.0, "level must rise");
    }

    #[test]
    fn chiller_valve_affects_condensation() {
        let mut p = GasPlant::default();
        p.write_tag("ChillerValve.Cmd", 0.0).unwrap();
        for _ in 0..600 {
            p.step(0.1);
        }
        // Without refrigeration the LTS warms and condensation collapses.
        let t = p.read_tag("Chiller.OutletTempK").unwrap();
        assert!(t > 270.0, "chiller off must warm the LTS feed: {t}");
        let liq_in = p.read_tag("LTS.LiqIn").unwrap();
        assert!(liq_in < 40.0, "condensation should collapse: {liq_in}");
    }

    #[test]
    fn tag_interface_is_complete_and_guarded() {
        let mut p = GasPlant::default();
        for t in [
            "LTS.LiquidPct",
            "SepLiq.MolarFlow",
            "LTSLiq.MolarFlow",
            "TowerFeed.MolarFlow",
            "Column.PressureKPa",
        ] {
            assert!(p.read_tag(t).is_some(), "missing tag {t}");
        }
        assert!(p.write_tag("LTS.LiquidPct", 1.0).is_err(), "read-only");
        assert!(p.write_tag("No.Such.Tag", 1.0).is_err());
        assert!(p.tags().len() > 20);
    }

    #[test]
    fn bound_tags_track_read_tag() {
        let mut p = GasPlant::default();
        let slot = p.bind_tag("LTS.LiquidPct").expect("tag exists at step 0");
        assert!(p.bind_tag("No.Such.Tag").is_none());
        assert_eq!(p.read_bound(slot), p.read_tag("LTS.LiquidPct").unwrap());
        p.write_tag("LTSLiqValve.Cmd", 75.0).unwrap();
        for _ in 0..300 {
            p.step(0.1);
        }
        assert_eq!(
            p.read_bound(slot),
            p.read_tag("LTS.LiquidPct").unwrap(),
            "handle must track the live value across steps"
        );
    }

    #[test]
    fn fig6b_series_have_sensible_magnitudes() {
        let p = GasPlant::default();
        let sep = p.read_tag("SepLiq.MolarFlow").unwrap();
        let lts = p.read_tag("LTSLiq.MolarFlow").unwrap();
        let tower = p.read_tag("TowerFeed.MolarFlow").unwrap();
        assert!(sep > 5.0 && sep < 400.0, "SepLiq {sep}");
        assert!(lts > 30.0 && lts < 600.0, "LTSLiq {lts}");
        assert!((tower - sep - lts).abs() < 1.0, "mixer balance");
    }
}
