//! Process-plant simulator: the UniSim substitute.
//!
//! The paper evaluates the EVM against a Honeywell UniSim model of a
//! natural-gas processing plant (Fig. 4): raw gas with N₂, CO₂ and C₁–nC₄
//! is chilled by propane refrigeration, heavy hydrocarbons condense in a
//! low-temperature separator (LTS), and the liquids are stabilized in a
//! depropanizer column. This crate rebuilds that plant from first
//! principles:
//!
//! * [`thermo`] — component properties, Wilson K-values and Rachford–Rice
//!   flash,
//! * [`stream`] — material streams (flow, temperature, pressure,
//!   composition),
//! * [`blocks`] — separators with level dynamics, gas/gas exchanger,
//!   propane chiller, valves with actuator lag, mixer, and a shortcut
//!   depropanizer,
//! * [`pid`] — PID regulators with the paper's second-order input filter,
//! * [`gasplant`] — the Fig. 4 flowsheet, calibrated so the LTS liquid
//!   valve sits at the paper's 11.48 % operating point,
//! * [`control`] — the 8 control loops (4 top-level + 4 depropanizer),
//! * [`modbus`] — the register map the Fig. 5 gateway exposes,
//! * [`faults`] — sensor/actuator/controller fault library.
//!
//! The plant advances with a fixed step (default 100 ms) under explicit
//! Euler integration; all dynamics are smooth and slow relative to that
//! step (valve lags ≥ 2 s, vessel levels minutes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod control;
pub mod faults;
pub mod gasplant;
pub mod modbus;
pub mod pid;
pub mod stream;
pub mod thermo;

pub use control::{
    lts_level_loop, standard_loops, vc_host_loops, ControlLoopSpec, LocalController,
};
pub use faults::ActuatorFault;
pub use gasplant::{BoundTag, GasPlant, PlantConfig};
pub use modbus::{read_bound, write_bound, BoundRegister, ModbusError, RegisterMap};
pub use pid::{PidController, PidParams, SecondOrderFilter};
pub use stream::Stream;
pub use thermo::{flash, Component, Composition, FlashResult, N_COMPONENTS};

/// A process simulation that exposes named tags for sensors and actuators.
///
/// This is the boundary the ModBus gateway (and therefore the wireless
/// network) sees: read a process variable, write an actuator command.
pub trait Plant {
    /// Advances the plant by `dt` seconds.
    fn step(&mut self, dt: f64);

    /// Reads a published tag (process variables and actuator read-backs).
    fn read_tag(&self, tag: &str) -> Option<f64>;

    /// Writes a writable (actuator) tag.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the tag does not exist or is read-only.
    fn write_tag(&mut self, tag: &str, value: f64) -> Result<(), String>;

    /// All published tag names.
    fn tags(&self) -> Vec<String>;
}
