//! Material streams.

use std::fmt;

use crate::thermo::{flash, Composition, FlashResult};

/// A material stream: molar flow, temperature, pressure and composition.
///
/// # Example
///
/// ```
/// use evm_plant::{Composition, Stream};
/// let feed = Stream::new(1440.0, 303.15, 6200.0, Composition::raw_natural_gas());
/// assert!(feed.flash().vapor_fraction > 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stream {
    /// Molar flow, kmol/h.
    pub molar_flow: f64,
    /// Temperature, K.
    pub t_k: f64,
    /// Pressure, kPa.
    pub p_kpa: f64,
    /// Molar composition.
    pub composition: Composition,
}

impl Stream {
    /// Creates a stream.
    ///
    /// # Panics
    ///
    /// Panics if flow is negative or T/P are not strictly positive.
    #[must_use]
    pub fn new(molar_flow: f64, t_k: f64, p_kpa: f64, composition: Composition) -> Self {
        assert!(molar_flow >= 0.0 && molar_flow.is_finite(), "bad flow");
        assert!(t_k > 0.0, "temperature must be positive");
        assert!(p_kpa > 0.0, "pressure must be positive");
        Stream {
            molar_flow,
            t_k,
            p_kpa,
            composition,
        }
    }

    /// An empty (zero-flow) stream at the given conditions.
    #[must_use]
    pub fn empty_like(&self) -> Stream {
        Stream {
            molar_flow: 0.0,
            ..*self
        }
    }

    /// Mass flow, kg/h.
    #[must_use]
    pub fn mass_flow(&self) -> f64 {
        self.molar_flow * self.composition.molecular_weight()
    }

    /// Equilibrium flash at the stream's own T and P.
    #[must_use]
    pub fn flash(&self) -> FlashResult {
        flash(&self.composition, self.t_k, self.p_kpa)
    }

    /// Splits this stream into `(vapor, liquid)` streams at equilibrium.
    #[must_use]
    pub fn split_phases(&self) -> (Stream, Stream) {
        let res = self.flash();
        let vapor = Stream {
            molar_flow: self.molar_flow * res.vapor_fraction,
            composition: res.vapor,
            ..*self
        };
        let liquid = Stream {
            molar_flow: self.molar_flow * (1.0 - res.vapor_fraction),
            composition: res.liquid,
            ..*self
        };
        (vapor, liquid)
    }

    /// Returns this stream at a different temperature (heating/cooling at
    /// constant pressure and composition).
    #[must_use]
    pub fn at_temperature(&self, t_k: f64) -> Stream {
        assert!(t_k > 0.0, "temperature must be positive");
        Stream { t_k, ..*self }
    }

    /// Mixes two streams: flows add, composition is mole-weighted,
    /// temperature is flow-weighted, pressure is the lower of the two.
    ///
    /// # Panics
    ///
    /// Panics if both streams have zero flow.
    #[must_use]
    pub fn mix(a: &Stream, b: &Stream) -> Stream {
        if a.molar_flow == 0.0 {
            return *b;
        }
        if b.molar_flow == 0.0 {
            return *a;
        }
        let total = a.molar_flow + b.molar_flow;
        Stream {
            molar_flow: total,
            t_k: (a.t_k * a.molar_flow + b.t_k * b.molar_flow) / total,
            p_kpa: a.p_kpa.min(b.p_kpa),
            composition: Composition::mix(
                &a.composition,
                a.molar_flow,
                &b.composition,
                b.molar_flow,
            ),
        }
    }
}

impl fmt::Display for Stream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} kmol/h @ {:.1} K, {:.0} kPa [{}]",
            self.molar_flow, self.t_k, self.p_kpa, self.composition
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thermo::Component;

    fn feed() -> Stream {
        Stream::new(1440.0, 303.15, 6200.0, Composition::raw_natural_gas())
    }

    #[test]
    fn mass_flow_uses_mw() {
        let s = Stream::new(100.0, 300.0, 1000.0, Composition::pure(Component::C1));
        assert!((s.mass_flow() - 1604.0).abs() < 1e-9);
    }

    #[test]
    fn phase_split_conserves_total_flow() {
        let s = feed().at_temperature(253.15);
        let (v, l) = s.split_phases();
        assert!((v.molar_flow + l.molar_flow - s.molar_flow).abs() < 1e-9);
        assert!(l.molar_flow > 0.0, "cold feed must condense");
        // Component balance on propane.
        let c3_in = s.molar_flow * s.composition.fraction(Component::C3);
        let c3_out = v.molar_flow * v.composition.fraction(Component::C3)
            + l.molar_flow * l.composition.fraction(Component::C3);
        assert!((c3_in - c3_out).abs() < 1e-6);
    }

    #[test]
    fn mix_conserves_flow_and_components() {
        let a = Stream::new(100.0, 300.0, 6000.0, Composition::pure(Component::C1));
        let b = Stream::new(50.0, 250.0, 5000.0, Composition::pure(Component::C3));
        let m = Stream::mix(&a, &b);
        assert!((m.molar_flow - 150.0).abs() < 1e-12);
        assert!((m.composition.fraction(Component::C3) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.p_kpa, 5000.0);
        // Flow-weighted temperature.
        assert!((m.t_k - (300.0 * 100.0 + 250.0 * 50.0) / 150.0).abs() < 1e-9);
    }

    #[test]
    fn mix_with_empty_is_identity() {
        let a = feed();
        let empty = a.empty_like();
        assert_eq!(Stream::mix(&a, &empty), a);
        assert_eq!(Stream::mix(&empty, &a), a);
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn bad_temperature_panics() {
        let _ = feed().at_temperature(0.0);
    }
}
