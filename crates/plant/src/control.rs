//! The plant's control loops.
//!
//! Eight controllers, as in §4.2: four top-level (inlet-separator level,
//! chiller temperature, **LTS level** — the paper's focus loop — and sales
//! pressure/flow) and four on the depropanizer (pressure, sump level,
//! reflux-drum level, tray temperature). Each loop is a data-driven
//! [`ControlLoopSpec`] so the same definition can run locally (wired
//! baseline) or be compiled into an EVM capsule and hosted on wireless
//! controller nodes.

use crate::pid::{PidController, PidParams, SecondOrderFilter};
use crate::Plant;

/// Declarative description of one control loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlLoopSpec {
    /// Loop name, e.g. `"LC-LTS"`.
    pub name: String,
    /// Tag providing the process variable.
    pub pv_tag: String,
    /// Tag receiving the actuator command.
    pub op_tag: String,
    /// Setpoint in PV units.
    pub setpoint: f64,
    /// PID tuning.
    pub pid: PidParams,
    /// Second-order input filter time constant, s (0 disables).
    pub filter_tau_s: f64,
    /// Control period, s.
    pub period_s: f64,
    /// Nominal output for bumpless start.
    pub nominal_output: f64,
}

/// A runnable controller instance built from a [`ControlLoopSpec`].
#[derive(Debug, Clone)]
pub struct LocalController {
    spec: ControlLoopSpec,
    pid: PidController,
    filter: SecondOrderFilter,
    next_due_s: f64,
}

impl LocalController {
    /// Instantiates the loop with a bumpless (preloaded) PID.
    #[must_use]
    pub fn new(spec: ControlLoopSpec) -> Self {
        let mut pid = PidController::new(spec.pid, spec.setpoint);
        pid.preload(spec.nominal_output);
        LocalController {
            filter: SecondOrderFilter::new(spec.filter_tau_s),
            next_due_s: 0.0,
            spec,
            pid,
        }
    }

    /// The loop definition.
    #[must_use]
    pub fn spec(&self) -> &ControlLoopSpec {
        &self.spec
    }

    /// The most recent output.
    #[must_use]
    pub fn last_output(&self) -> f64 {
        self.pid.last_output()
    }

    /// Changes the setpoint (mode change).
    pub fn set_setpoint(&mut self, sp: f64) {
        self.pid.set_setpoint(sp);
        self.spec.setpoint = sp;
    }

    /// Computes the control law on a raw PV sample: filter then PID.
    /// This is the exact arithmetic the EVM capsule performs.
    pub fn compute(&mut self, pv_raw: f64, dt_s: f64) -> f64 {
        let pv = self.filter.update(pv_raw, dt_s);
        self.pid.update(pv, dt_s)
    }

    /// Runs the loop against a [`Plant`] if its period has elapsed;
    /// returns the command written, if any.
    pub fn poll(&mut self, plant: &mut dyn Plant, now_s: f64) -> Option<f64> {
        if now_s + 1e-9 < self.next_due_s {
            return None;
        }
        self.next_due_s = now_s + self.spec.period_s;
        let pv = plant.read_tag(&self.spec.pv_tag)?;
        let out = self.compute(pv, self.spec.period_s);
        plant
            .write_tag(&self.spec.op_tag, out)
            .expect("actuator tag must be writable");
        Some(out)
    }
}

/// The LTS level loop — the paper's focus (Fig. 6a): level PV, liquid
/// valve OP, second-order filter + PI, 250 ms control cycle.
#[must_use]
pub fn lts_level_loop() -> ControlLoopSpec {
    ControlLoopSpec {
        name: "LC-LTS".into(),
        pv_tag: "LTS.LiquidPct".into(),
        op_tag: "LTSLiqValve.Cmd".into(),
        setpoint: 50.0,
        // Direct-acting: level above SP opens the outlet valve.
        pid: PidParams::pi(1.2, 90.0),
        filter_tau_s: 2.0,
        period_s: 0.25,
        nominal_output: 11.48,
    }
}

/// All eight loops at the calibrated operating point.
#[must_use]
pub fn standard_loops() -> Vec<ControlLoopSpec> {
    vec![
        // --- top-level -------------------------------------------------
        ControlLoopSpec {
            name: "LC-InletSep".into(),
            pv_tag: "InletSep.LevelPct".into(),
            op_tag: "SepLiqValve.Cmd".into(),
            setpoint: 50.0,
            pid: PidParams::pi(1.5, 120.0),
            filter_tau_s: 2.0,
            period_s: 0.25,
            nominal_output: 50.0,
        },
        ControlLoopSpec {
            name: "TC-Chiller".into(),
            pv_tag: "Chiller.OutletTempK".into(),
            op_tag: "ChillerValve.Cmd".into(),
            setpoint: 253.15,
            // Temperature above SP -> open refrigerant valve: direct.
            pid: PidParams::pi(4.0, 60.0),
            filter_tau_s: 1.0,
            period_s: 0.25,
            nominal_output: 60.0,
        },
        lts_level_loop(),
        ControlLoopSpec {
            name: "FC-SalesGas".into(),
            pv_tag: "SalesGas.MolarFlow".into(),
            op_tag: "SalesValve.Cmd".into(),
            setpoint: 1200.0,
            pid: PidParams::pi(0.05, 30.0),
            filter_tau_s: 1.0,
            period_s: 0.25,
            nominal_output: 50.0,
        },
        // --- depropanizer ---------------------------------------------
        ControlLoopSpec {
            name: "PC-Column".into(),
            pv_tag: "Column.PressureKPa".into(),
            op_tag: "CondenserDuty.Cmd".into(),
            setpoint: 1400.0,
            pid: PidParams::pi(0.4, 90.0),
            filter_tau_s: 1.0,
            period_s: 0.5,
            nominal_output: 60.0,
        },
        ControlLoopSpec {
            name: "LC-Sump".into(),
            pv_tag: "Column.SumpLevelPct".into(),
            op_tag: "BottomsValve.Cmd".into(),
            setpoint: 50.0,
            pid: PidParams::pi(1.5, 120.0),
            filter_tau_s: 2.0,
            period_s: 0.5,
            nominal_output: 50.0,
        },
        ControlLoopSpec {
            name: "LC-RefluxDrum".into(),
            pv_tag: "Column.DrumLevelPct".into(),
            op_tag: "DistillateValve.Cmd".into(),
            setpoint: 50.0,
            pid: PidParams::pi(1.5, 120.0),
            filter_tau_s: 2.0,
            period_s: 0.5,
            nominal_output: 50.0,
        },
        ControlLoopSpec {
            name: "TC-Tray".into(),
            pv_tag: "Column.TrayTempK".into(),
            op_tag: "ReboilerDuty.Cmd".into(),
            setpoint: 330.0,
            // Tray temp above SP -> reduce duty: reverse-acting.
            pid: PidParams::pi(2.0, 120.0).reverse_acting(),
            filter_tau_s: 1.0,
            period_s: 0.5,
            nominal_output: 60.0,
        },
    ]
}

/// The canonical order in which Virtual Components host plant loops as
/// the pool expands on-line (§4.2 capacity expansion): the paper's focus
/// loop first, then the remaining top-level loops, then the depropanizer
/// loops. VC `k` of a multi-VC deployment hosts `vc_host_loops()[k]`.
#[must_use]
pub fn vc_host_loops() -> Vec<ControlLoopSpec> {
    let mut loops = standard_loops();
    let focus = loops
        .iter()
        .position(|l| l.name == "LC-LTS")
        .expect("LC-LTS is a standard loop");
    let focus = loops.remove(focus);
    loops.insert(0, focus);
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gasplant::GasPlant;

    #[test]
    fn eight_loops_defined() {
        let loops = standard_loops();
        assert_eq!(loops.len(), 8, "4 top-level + 4 depropanizer");
        let names: Vec<&str> = loops.iter().map(|l| l.name.as_str()).collect();
        assert!(names.contains(&"LC-LTS"));
        // No duplicate actuator tags.
        let mut ops: Vec<&String> = loops.iter().map(|l| &l.op_tag).collect();
        ops.sort();
        ops.dedup();
        assert_eq!(ops.len(), 8);
    }

    #[test]
    fn poll_respects_period() {
        let mut plant = GasPlant::default();
        let mut ctrl = LocalController::new(lts_level_loop());
        assert!(ctrl.poll(&mut plant, 0.0).is_some());
        assert!(ctrl.poll(&mut plant, 0.1).is_none(), "before period");
        assert!(ctrl.poll(&mut plant, 0.25).is_some());
    }

    #[test]
    fn closed_loop_holds_the_lts_level() {
        let mut plant = GasPlant::default();
        let mut loops: Vec<LocalController> = standard_loops()
            .into_iter()
            .map(LocalController::new)
            .collect();
        let dt = 0.25;
        let mut t = 0.0;
        for _ in 0..(1800.0 / dt) as usize {
            for c in &mut loops {
                let _ = c.poll(&mut plant, t);
            }
            plant.step(dt);
            t += dt;
        }
        let lvl = plant.lts_level_pct();
        assert!((lvl - 50.0).abs() < 3.0, "closed-loop level {lvl}");
        // Valve stays in the paper's neighborhood.
        let v = plant.lts_valve_pct();
        assert!(v > 4.0 && v < 30.0, "valve {v}");
    }

    #[test]
    fn disturbance_rejection() {
        // Run to steady state, disturb the level, and check recovery.
        let mut plant = GasPlant::default();
        let mut ctrl = LocalController::new(lts_level_loop());
        let dt = 0.25;
        let mut t = 0.0;
        for _ in 0..2400 {
            let _ = ctrl.poll(&mut plant, t);
            plant.step(dt);
            t += dt;
        }
        // Disturb: dump the valve open briefly (bypassing the controller).
        plant.write_tag("LTSLiqValve.Cmd", 90.0).unwrap();
        for _ in 0..200 {
            plant.step(dt);
            t += dt;
        }
        assert!(plant.lts_level_pct() < 45.0, "disturbance visible");
        // Controller takes back over.
        for _ in 0..14000 {
            let _ = ctrl.poll(&mut plant, t);
            plant.step(dt);
            t += dt;
        }
        let lvl = plant.lts_level_pct();
        assert!((lvl - 50.0).abs() < 3.0, "recovered to {lvl}");
    }

    #[test]
    fn setpoint_change_tracks() {
        let mut plant = GasPlant::default();
        let mut ctrl = LocalController::new(lts_level_loop());
        ctrl.set_setpoint(60.0);
        let dt = 0.25;
        let mut t = 0.0;
        for _ in 0..20000 {
            let _ = ctrl.poll(&mut plant, t);
            plant.step(dt);
            t += dt;
        }
        let lvl = plant.lts_level_pct();
        assert!((lvl - 60.0).abs() < 3.0, "tracked to {lvl}");
    }
}
