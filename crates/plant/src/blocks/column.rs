//! Shortcut depropanizer column.
//!
//! The Fig. 4 depropanizer "processes the liquids to produce a
//! low-propane-content bottoms product". A tray-by-tray model is far more
//! than the EVM experiments need; this shortcut model keeps the four
//! control handles real (feed split via reboiler duty, condenser duty /
//! pressure, sump level, reflux-drum level) while abstracting the internals
//! to per-component split factors:
//!
//! * light components (N₂–C₂) go overhead almost completely,
//! * propane's split is *driven by the reboiler duty* — more boilup pushes
//!   more C₃ overhead and the bottoms meets its low-propane spec,
//! * butanes fall to the bottoms almost completely.

use crate::stream::Stream;
use crate::thermo::{Component, Composition, N_COMPONENTS};

/// The depropanizer: two holdups (sump, reflux drum), a pressure state and
/// the shortcut split.
#[derive(Debug, Clone, PartialEq)]
pub struct Depropanizer {
    sump_holdup_kmol: f64,
    sump_comp: Composition,
    drum_holdup_kmol: f64,
    drum_comp: Composition,
    pressure_kpa: f64,

    sump_volume_m3: f64,
    drum_volume_m3: f64,
    nominal_pressure_kpa: f64,
    /// kPa of pressure rise per kmol of uncondensed vapor.
    pressure_gain: f64,
    /// Condenser capacity at 100 % duty, kmol/h.
    condenser_capacity_kmolh: f64,
}

impl Depropanizer {
    /// Creates the column at nominal pressure with both holdups at 50 %.
    #[must_use]
    pub fn new(nominal_pressure_kpa: f64, condenser_capacity_kmolh: f64) -> Self {
        // Representative phase compositions to seed the holdups.
        let bottoms_seed = Composition::new([0.0, 0.0, 0.0, 0.02, 0.02, 0.48, 0.48]);
        let overhead_seed = Composition::new([0.01, 0.03, 0.55, 0.25, 0.15, 0.005, 0.005]);
        let mut col = Depropanizer {
            sump_holdup_kmol: 0.0,
            sump_comp: bottoms_seed,
            drum_holdup_kmol: 0.0,
            drum_comp: overhead_seed,
            pressure_kpa: nominal_pressure_kpa,
            sump_volume_m3: 4.0,
            drum_volume_m3: 2.5,
            nominal_pressure_kpa,
            pressure_gain: 2.0,
            condenser_capacity_kmolh: condenser_capacity_kmolh.max(1.0),
        };
        col.sump_holdup_kmol = col.sump_capacity_kmol() * 0.5;
        col.drum_holdup_kmol = col.drum_capacity_kmol() * 0.5;
        col
    }

    fn sump_capacity_kmol(&self) -> f64 {
        self.sump_volume_m3 / self.sump_comp.liquid_molar_volume()
    }

    fn drum_capacity_kmol(&self) -> f64 {
        self.drum_volume_m3 / self.drum_comp.liquid_molar_volume()
    }

    /// Sump (reboiler) level, %.
    #[must_use]
    pub fn sump_level_pct(&self) -> f64 {
        (self.sump_holdup_kmol / self.sump_capacity_kmol() * 100.0).clamp(0.0, 100.0)
    }

    /// Reflux-drum level, %.
    #[must_use]
    pub fn drum_level_pct(&self) -> f64 {
        (self.drum_holdup_kmol / self.drum_capacity_kmol() * 100.0).clamp(0.0, 100.0)
    }

    /// Column pressure, kPa.
    #[must_use]
    pub fn pressure_kpa(&self) -> f64 {
        self.pressure_kpa
    }

    /// Control-tray temperature, K — a monotone proxy for the separation
    /// sharpness the reboiler duty buys (PV of the column TC loop).
    #[must_use]
    pub fn tray_temp_k(&self, reboiler_duty_pct: f64) -> f64 {
        330.0
            + 0.3 * (reboiler_duty_pct.clamp(0.0, 100.0) - 60.0)
            + 0.01 * (self.pressure_kpa - self.nominal_pressure_kpa)
    }

    /// Propane mole fraction in the bottoms inventory — the product spec
    /// of §4.1 ("low-propane-content bottoms product").
    #[must_use]
    pub fn bottoms_propane_frac(&self) -> f64 {
        self.sump_comp.fraction(Component::C3)
    }

    /// Per-component overhead split fraction at a reboiler duty.
    fn overhead_fraction(c: Component, duty_pct: f64) -> f64 {
        let d = duty_pct.clamp(0.0, 100.0) / 100.0;
        match c {
            Component::N2 | Component::Co2 | Component::C1 => 0.999,
            Component::C2 => 0.97,
            Component::C3 => (0.02 + 1.06 * d).min(0.99),
            Component::IC4 => 0.02 + 0.10 * d,
            Component::NC4 => 0.01 + 0.05 * d,
        }
    }

    /// Advances the column by `dt_s` seconds: splits the feed, condenses
    /// overhead vapor into the drum (limited by condenser duty), and
    /// integrates the pressure imbalance.
    pub fn step(
        &mut self,
        feed: &Stream,
        reboiler_duty_pct: f64,
        condenser_duty_pct: f64,
        dt_s: f64,
    ) {
        assert!(dt_s > 0.0, "dt must be positive");
        let dt_h = dt_s / 3600.0;

        // Split the feed per component.
        let mut ov = [0.0; N_COMPONENTS];
        let mut bt = [0.0; N_COMPONENTS];
        let mut ov_flow = 0.0;
        let mut bt_flow = 0.0;
        for c in Component::ALL {
            let f = feed.molar_flow * feed.composition.fraction(c);
            let s = Self::overhead_fraction(c, reboiler_duty_pct);
            ov[c.index()] = f * s;
            bt[c.index()] = f * (1.0 - s);
            ov_flow += f * s;
            bt_flow += f * (1.0 - s);
        }

        // Bottoms accumulate in the sump.
        if bt_flow > 0.0 {
            let added = bt_flow * dt_h;
            self.sump_comp = Composition::mix(
                &self.sump_comp,
                self.sump_holdup_kmol,
                &Composition::new(bt),
                added,
            );
            self.sump_holdup_kmol = (self.sump_holdup_kmol + added).min(self.sump_capacity_kmol());
        }

        // Overhead vapor meets the condenser.
        let cond_cap = self.condenser_capacity_kmolh * condenser_duty_pct.clamp(0.0, 100.0) / 100.0;
        let condensed = ov_flow.min(cond_cap);
        if condensed > 0.0 {
            let added = condensed * dt_h;
            self.drum_comp = Composition::mix(
                &self.drum_comp,
                self.drum_holdup_kmol,
                &Composition::new(ov),
                added,
            );
            self.drum_holdup_kmol = (self.drum_holdup_kmol + added).min(self.drum_capacity_kmol());
        }

        // Uncondensed vapor raises pressure; over-capacity pulls it down.
        let imbalance = ov_flow - cond_cap;
        self.pressure_kpa += self.pressure_gain * imbalance * dt_h;
        // Mild self-regulation toward nominal (vent/relief behavior).
        self.pressure_kpa -= 0.2 * (self.pressure_kpa - self.nominal_pressure_kpa) * dt_h;
        self.pressure_kpa = self.pressure_kpa.clamp(100.0, 10_000.0);
    }

    /// Withdraws bottoms product (limited by sump inventory).
    pub fn draw_bottoms(&mut self, rate_kmolh: f64, dt_s: f64) -> Stream {
        assert!(dt_s > 0.0, "dt must be positive");
        let want = rate_kmolh.max(0.0) * dt_s / 3600.0;
        let got = want.min(self.sump_holdup_kmol);
        self.sump_holdup_kmol -= got;
        Stream::new(
            got * 3600.0 / dt_s,
            360.0,
            self.pressure_kpa,
            self.sump_comp,
        )
    }

    /// Withdraws distillate from the reflux drum (limited by inventory).
    pub fn draw_distillate(&mut self, rate_kmolh: f64, dt_s: f64) -> Stream {
        assert!(dt_s > 0.0, "dt must be positive");
        let want = rate_kmolh.max(0.0) * dt_s / 3600.0;
        let got = want.min(self.drum_holdup_kmol);
        self.drum_holdup_kmol -= got;
        Stream::new(
            got * 3600.0 / dt_s,
            310.0,
            self.pressure_kpa,
            self.drum_comp,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NGL-ish tower feed.
    fn tower_feed() -> Stream {
        Stream::new(
            180.0,
            280.0,
            1400.0,
            Composition::new([0.001, 0.01, 0.12, 0.20, 0.33, 0.17, 0.169]),
        )
    }

    fn column() -> Depropanizer {
        Depropanizer::new(1400.0, 200.0)
    }

    #[test]
    fn duty_pushes_propane_overhead() {
        let mut lazy = column();
        let mut hard = column();
        let feed = tower_feed();
        for _ in 0..2000 {
            lazy.step(&feed, 20.0, 80.0, 5.0);
            hard.step(&feed, 90.0, 80.0, 5.0);
            let _ = lazy.draw_bottoms(60.0, 5.0);
            let _ = hard.draw_bottoms(60.0, 5.0);
        }
        assert!(
            hard.bottoms_propane_frac() < lazy.bottoms_propane_frac(),
            "more duty must strip more propane: {} vs {}",
            hard.bottoms_propane_frac(),
            lazy.bottoms_propane_frac()
        );
        // The spec point: high duty yields a low-propane bottoms product.
        assert!(hard.bottoms_propane_frac() < 0.05);
    }

    #[test]
    fn pressure_rises_without_condensation() {
        let mut col = column();
        let feed = tower_feed();
        let p0 = col.pressure_kpa();
        for _ in 0..500 {
            col.step(&feed, 60.0, 0.0, 5.0);
        }
        assert!(col.pressure_kpa() > p0 + 5.0, "pressure must rise");
    }

    #[test]
    fn condenser_holds_pressure() {
        // A simple proportional pressure controller on condenser duty —
        // the PC-Column loop in miniature.
        let mut col = column();
        let feed = tower_feed();
        for _ in 0..2000 {
            let duty = (60.0 + 0.4 * (col.pressure_kpa() - 1400.0)).clamp(0.0, 100.0);
            col.step(&feed, 60.0, duty, 5.0);
            let _ = col.draw_distillate(120.0, 5.0);
            let _ = col.draw_bottoms(60.0, 5.0);
        }
        assert!(
            (col.pressure_kpa() - 1400.0).abs() < 150.0,
            "P = {}",
            col.pressure_kpa()
        );
    }

    #[test]
    fn levels_respond_to_draws() {
        let mut col = column();
        let feed = tower_feed();
        for _ in 0..200 {
            col.step(&feed, 60.0, 80.0, 5.0);
        }
        let sump_before = col.sump_level_pct();
        let _ = col.draw_bottoms(500.0, 60.0);
        assert!(col.sump_level_pct() < sump_before);
    }

    #[test]
    fn tray_temp_monotone_in_duty() {
        let col = column();
        assert!(col.tray_temp_k(80.0) > col.tray_temp_k(40.0));
    }

    #[test]
    fn draw_limits_respect_inventory() {
        let mut col = column();
        let huge = col.draw_bottoms(1e9, 1.0);
        assert!(huge.molar_flow.is_finite());
        assert_eq!(col.sump_level_pct(), 0.0);
    }
}
