//! Stream mixer.

use crate::stream::Stream;

/// Mixes any number of streams (see [`Stream::mix`] for the pairwise
/// rules). Zero-flow streams are ignored.
///
/// # Panics
///
/// Panics if `streams` is empty.
#[must_use]
pub fn mix_all(streams: &[Stream]) -> Stream {
    assert!(!streams.is_empty(), "mixer needs at least one inlet");
    let mut acc = streams[0];
    for s in &streams[1..] {
        acc = Stream::mix(&acc, s);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thermo::{Component, Composition};

    #[test]
    fn three_way_mix_conserves_flow() {
        let a = Stream::new(10.0, 300.0, 5000.0, Composition::pure(Component::C1));
        let b = Stream::new(20.0, 280.0, 5000.0, Composition::pure(Component::C2));
        let c = Stream::new(30.0, 260.0, 4500.0, Composition::pure(Component::C3));
        let m = mix_all(&[a, b, c]);
        assert!((m.molar_flow - 60.0).abs() < 1e-12);
        assert!((m.composition.fraction(Component::C3) - 0.5).abs() < 1e-12);
        assert_eq!(m.p_kpa, 4500.0);
    }

    #[test]
    fn singleton_mix_is_identity() {
        let a = Stream::new(10.0, 300.0, 5000.0, Composition::raw_natural_gas());
        assert_eq!(mix_all(&[a]), a);
    }
}
