//! Propane refrigeration chiller.
//!
//! The chiller closes the gap between the gas/gas exchanger outlet and the
//! LTS operating temperature. Cooling capacity is proportional to the
//! refrigerant valve opening and derated at higher process flow — enough
//! structure for the chiller temperature loop (controller 2) to have a
//! real job.

use crate::stream::Stream;

/// The propane chiller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chiller {
    /// Temperature drop at 100 % refrigerant valve and nominal flow, K.
    max_drop_k: f64,
    /// Nominal process flow for the rating, kmol/h.
    nominal_flow_kmolh: f64,
}

impl Chiller {
    /// Creates a chiller.
    ///
    /// # Panics
    ///
    /// Panics if either rating is not strictly positive.
    #[must_use]
    pub fn new(max_drop_k: f64, nominal_flow_kmolh: f64) -> Self {
        assert!(max_drop_k > 0.0, "rating must be positive");
        assert!(nominal_flow_kmolh > 0.0, "rating must be positive");
        Chiller {
            max_drop_k,
            nominal_flow_kmolh,
        }
    }

    /// Cools `inlet` with the refrigerant valve at `valve_pct`; returns the
    /// chilled stream.
    #[must_use]
    pub fn cool(&self, inlet: &Stream, valve_pct: f64) -> Stream {
        let pct = valve_pct.clamp(0.0, 100.0);
        if inlet.molar_flow == 0.0 {
            return *inlet;
        }
        // Capacity derates with flow: twice the gas, half the approach.
        let derate = (self.nominal_flow_kmolh / inlet.molar_flow).min(2.0);
        let drop = self.max_drop_k * pct / 100.0 * derate;
        inlet.at_temperature((inlet.t_k - drop).max(150.0))
    }

    /// Refrigeration duty estimate in kW for reporting (molar cp of light
    /// gas ≈ 36 kJ/kmol·K).
    #[must_use]
    pub fn duty_kw(&self, inlet: &Stream, outlet: &Stream) -> f64 {
        let cp = 36.0; // kJ/kmol K
        inlet.molar_flow * cp * (inlet.t_k - outlet.t_k).max(0.0) / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thermo::Composition;

    fn inlet() -> Stream {
        Stream::new(1400.0, 278.15, 6100.0, Composition::raw_natural_gas())
    }

    #[test]
    fn valve_controls_drop() {
        let ch = Chiller::new(40.0, 1400.0);
        let half = ch.cool(&inlet(), 50.0);
        let full = ch.cool(&inlet(), 100.0);
        assert!((inlet().t_k - half.t_k - 20.0).abs() < 1e-9);
        assert!((inlet().t_k - full.t_k - 40.0).abs() < 1e-9);
    }

    #[test]
    fn derates_with_flow() {
        let ch = Chiller::new(40.0, 1400.0);
        let mut heavy = inlet();
        heavy.molar_flow = 2800.0;
        let out = ch.cool(&heavy, 100.0);
        assert!((heavy.t_k - out.t_k - 20.0).abs() < 1e-9);
    }

    #[test]
    fn clamps_valve_and_floor_temperature() {
        let ch = Chiller::new(500.0, 1400.0);
        let out = ch.cool(&inlet(), 150.0);
        assert!(out.t_k >= 150.0, "physical floor");
        let none = ch.cool(&inlet(), -10.0);
        assert_eq!(none.t_k, inlet().t_k);
    }

    #[test]
    fn duty_reports_positive_cooling() {
        let ch = Chiller::new(40.0, 1400.0);
        let out = ch.cool(&inlet(), 100.0);
        assert!(ch.duty_kw(&inlet(), &out) > 0.0);
        assert_eq!(ch.duty_kw(&out, &inlet()), 0.0);
    }
}
