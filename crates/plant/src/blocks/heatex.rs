//! Gas/gas heat exchanger (effectiveness model).
//!
//! In Fig. 4 the warm inlet gas is pre-cooled against the cold LTS
//! overhead before entering the chiller — a feed/effluent exchanger. An
//! effectiveness-NTU model with molar-flow-weighted capacities is entirely
//! adequate: what the EVM experiments need is the correct *direction and
//! rough magnitude* of the thermal coupling.

use crate::stream::Stream;

/// A counter-current gas/gas exchanger with fixed effectiveness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GasGasExchanger {
    effectiveness: f64,
}

impl GasGasExchanger {
    /// Creates an exchanger.
    ///
    /// # Panics
    ///
    /// Panics if `effectiveness` is outside `[0, 1]`.
    #[must_use]
    pub fn new(effectiveness: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&effectiveness),
            "effectiveness out of [0,1]"
        );
        GasGasExchanger { effectiveness }
    }

    /// The configured effectiveness.
    #[must_use]
    pub fn effectiveness(&self) -> f64 {
        self.effectiveness
    }

    /// Exchanges heat between the hot and cold streams; returns
    /// `(hot_out, cold_out)`.
    ///
    /// Capacities are approximated by molar flow (near-equal molar heat
    /// capacities of light gases); the minimum-capacity stream limits the
    /// duty, as in the standard ε-NTU formulation.
    #[must_use]
    pub fn exchange(&self, hot: &Stream, cold: &Stream) -> (Stream, Stream) {
        if hot.molar_flow == 0.0 || cold.molar_flow == 0.0 || hot.t_k <= cold.t_k {
            return (*hot, *cold);
        }
        let c_hot = hot.molar_flow;
        let c_cold = cold.molar_flow;
        let c_min = c_hot.min(c_cold);
        // Duty in "kmol·K/h" units (cp cancels under the equal-cp
        // assumption).
        let duty = self.effectiveness * c_min * (hot.t_k - cold.t_k);
        let hot_out = hot.at_temperature(hot.t_k - duty / c_hot);
        let cold_out = cold.at_temperature(cold.t_k + duty / c_cold);
        (hot_out, cold_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thermo::Composition;

    fn hot() -> Stream {
        Stream::new(1400.0, 303.15, 6200.0, Composition::raw_natural_gas())
    }

    fn cold() -> Stream {
        Stream::new(1250.0, 253.15, 6000.0, Composition::raw_natural_gas())
    }

    #[test]
    fn directions_are_correct() {
        let hx = GasGasExchanger::new(0.6);
        let (h, c) = hx.exchange(&hot(), &cold());
        assert!(h.t_k < hot().t_k, "hot must cool");
        assert!(c.t_k > cold().t_k, "cold must warm");
    }

    #[test]
    fn energy_balance_holds() {
        let hx = GasGasExchanger::new(0.75);
        let (h, c) = hx.exchange(&hot(), &cold());
        let lost = hot().molar_flow * (hot().t_k - h.t_k);
        let gained = cold().molar_flow * (c.t_k - cold().t_k);
        assert!((lost - gained).abs() < 1e-6);
    }

    #[test]
    fn no_temperature_crossing() {
        let hx = GasGasExchanger::new(1.0);
        let (h, c) = hx.exchange(&hot(), &cold());
        // With ε = 1 and c_min on the cold side, the cold outlet reaches
        // the hot inlet at most.
        assert!(c.t_k <= hot().t_k + 1e-9);
        assert!(h.t_k >= cold().t_k - 1e-9);
    }

    #[test]
    fn zero_effectiveness_is_passthrough() {
        let hx = GasGasExchanger::new(0.0);
        let (h, c) = hx.exchange(&hot(), &cold());
        assert_eq!(h.t_k, hot().t_k);
        assert_eq!(c.t_k, cold().t_k);
    }

    #[test]
    fn inverted_temperatures_no_exchange() {
        let hx = GasGasExchanger::new(0.8);
        let (h, c) = hx.exchange(&cold(), &hot());
        assert_eq!(h.t_k, cold().t_k);
        assert_eq!(c.t_k, hot().t_k);
    }
}
