//! Flowsheet unit operations.
//!
//! Each block is a passive model advanced by explicit calls with explicit
//! time steps; the [`crate::gasplant::GasPlant`] composes them in the
//! Fig. 4 arrangement.

mod chiller;
mod column;
mod heatex;
mod mixer;
mod separator;
mod valve;

pub use chiller::Chiller;
pub use column::Depropanizer;
pub use heatex::GasGasExchanger;
pub use mixer::mix_all;
pub use separator::Separator;
pub use valve::Valve;
