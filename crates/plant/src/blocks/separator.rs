//! Two-phase separator vessel with liquid-level dynamics.
//!
//! The Inlet Separator and the Low-Temperature Separator of Fig. 4. Feed is
//! flashed at vessel conditions; vapor leaves overhead immediately (vapor
//! holdup is negligible at these flows), liquid accumulates in the boot and
//! is withdrawn through the level-control valve. The liquid **level
//! percentage** is the paper's headline process variable (Fig. 6b, solid
//! red trace).

use crate::stream::Stream;
use crate::thermo::Composition;

/// A vertical two-phase separator.
#[derive(Debug, Clone, PartialEq)]
pub struct Separator {
    /// Liquid-section volume, m³.
    volume_m3: f64,
    /// Operating temperature, K.
    t_k: f64,
    /// Operating pressure, kPa.
    p_kpa: f64,
    /// Current liquid inventory, kmol.
    holdup_kmol: f64,
    /// Composition of the held liquid.
    liquid_comp: Composition,
    /// Liquid inflow over the last step, kmol/h (for reporting).
    last_liquid_in: f64,
}

impl Separator {
    /// Creates a separator at the given conditions with an initial level.
    ///
    /// # Panics
    ///
    /// Panics if volume, temperature or pressure are not strictly
    /// positive, or the initial level is outside 0–100 %.
    #[must_use]
    pub fn new(
        volume_m3: f64,
        t_k: f64,
        p_kpa: f64,
        initial_level_pct: f64,
        initial_comp: Composition,
    ) -> Self {
        assert!(volume_m3 > 0.0, "volume must be positive");
        assert!(t_k > 0.0 && p_kpa > 0.0, "bad operating conditions");
        assert!(
            (0.0..=100.0).contains(&initial_level_pct),
            "level out of range"
        );
        let mut sep = Separator {
            volume_m3,
            t_k,
            p_kpa,
            holdup_kmol: 0.0,
            liquid_comp: initial_comp,
            last_liquid_in: 0.0,
        };
        sep.holdup_kmol = sep.max_holdup_kmol() * initial_level_pct / 100.0;
        sep
    }

    /// Vessel capacity in kmol of the *current* liquid.
    #[must_use]
    pub fn max_holdup_kmol(&self) -> f64 {
        self.volume_m3 / self.liquid_comp.liquid_molar_volume()
    }

    /// Liquid level, percent of the liquid section.
    #[must_use]
    pub fn level_pct(&self) -> f64 {
        (self.holdup_kmol / self.max_holdup_kmol() * 100.0).clamp(0.0, 100.0)
    }

    /// Operating temperature, K.
    #[must_use]
    pub fn t_k(&self) -> f64 {
        self.t_k
    }

    /// Operating pressure, kPa.
    #[must_use]
    pub fn p_kpa(&self) -> f64 {
        self.p_kpa
    }

    /// Sets the operating temperature (driven by the chiller loop for the
    /// LTS).
    pub fn set_t_k(&mut self, t_k: f64) {
        assert!(t_k > 0.0, "temperature must be positive");
        self.t_k = t_k;
    }

    /// Composition of the held liquid.
    #[must_use]
    pub fn liquid_composition(&self) -> Composition {
        self.liquid_comp
    }

    /// Liquid condensation rate into the boot over the last step, kmol/h.
    #[must_use]
    pub fn last_liquid_in(&self) -> f64 {
        self.last_liquid_in
    }

    /// Feeds the vessel for `dt_s` seconds: the feed is flashed at vessel
    /// conditions, the liquid cut accumulates, and the vapor cut leaves
    /// overhead (returned).
    pub fn feed(&mut self, feed: &Stream, dt_s: f64) -> Stream {
        assert!(dt_s > 0.0, "dt must be positive");
        let at_vessel = Stream {
            t_k: self.t_k,
            p_kpa: self.p_kpa,
            ..*feed
        };
        let (vapor, liquid) = at_vessel.split_phases();
        self.last_liquid_in = liquid.molar_flow;
        if liquid.molar_flow > 0.0 {
            let added = liquid.molar_flow * dt_s / 3600.0;
            self.liquid_comp = Composition::mix(
                &self.liquid_comp,
                self.holdup_kmol,
                &liquid.composition,
                added,
            );
            self.holdup_kmol = (self.holdup_kmol + added).min(self.max_holdup_kmol());
        }
        vapor
    }

    /// Withdraws liquid at the requested rate for `dt_s` seconds; the
    /// returned stream's flow is limited by the available inventory.
    pub fn draw_liquid(&mut self, rate_kmolh: f64, dt_s: f64) -> Stream {
        assert!(dt_s > 0.0, "dt must be positive");
        let rate = rate_kmolh.max(0.0);
        let want_kmol = rate * dt_s / 3600.0;
        let got_kmol = want_kmol.min(self.holdup_kmol);
        self.holdup_kmol -= got_kmol;
        Stream::new(
            got_kmol * 3600.0 / dt_s,
            self.t_k,
            self.p_kpa,
            self.liquid_comp,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thermo::Component;

    fn lts() -> Separator {
        Separator::new(
            5.0,
            253.15,
            6000.0,
            50.0,
            Composition::new([0.0, 0.01, 0.15, 0.25, 0.35, 0.12, 0.12]),
        )
    }

    fn feed() -> Stream {
        Stream::new(1400.0, 303.15, 6000.0, Composition::raw_natural_gas())
    }

    #[test]
    fn initial_level_matches() {
        let s = lts();
        assert!((s.level_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn feeding_raises_level_and_returns_vapor() {
        let mut s = lts();
        let l0 = s.level_pct();
        let vap = s.feed(&feed(), 10.0);
        assert!(vap.molar_flow > 0.0 && vap.molar_flow < 1400.0);
        assert!(s.level_pct() > l0, "liquid must accumulate");
        assert!(s.last_liquid_in() > 0.0);
        // Vapor leaves at vessel conditions.
        assert_eq!(vap.t_k, 253.15);
    }

    #[test]
    fn drawing_lowers_level_and_conserves_moles() {
        let mut s = lts();
        let before = s.holdup_kmol;
        let out = s.draw_liquid(120.0, 30.0);
        let removed = out.molar_flow * 30.0 / 3600.0;
        assert!((before - s.holdup_kmol - removed).abs() < 1e-9);
        assert!(s.level_pct() < 50.0);
    }

    #[test]
    fn draw_limited_by_inventory() {
        let mut s = Separator::new(1.0, 253.15, 6000.0, 1.0, Composition::pure(Component::C3));
        // Ask for far more than is held.
        let out = s.draw_liquid(1e6, 60.0);
        assert!(s.level_pct() < 1e-9, "vessel must be empty");
        assert!(out.molar_flow < 1e6);
    }

    #[test]
    fn mass_balance_over_feed_and_draw() {
        let mut s = lts();
        let h0 = s.holdup_kmol;
        let dt = 5.0;
        let mut fed_liquid = 0.0;
        let mut drawn = 0.0;
        for _ in 0..100 {
            let _v = s.feed(&feed(), dt);
            fed_liquid += s.last_liquid_in() * dt / 3600.0;
            let out = s.draw_liquid(80.0, dt);
            drawn += out.molar_flow * dt / 3600.0;
        }
        assert!(
            (s.holdup_kmol - (h0 + fed_liquid - drawn)).abs() < 1e-6,
            "holdup drifted"
        );
    }

    #[test]
    fn warmer_vessel_condenses_less() {
        let mut cold = lts();
        let mut warm = lts();
        warm.set_t_k(283.15);
        let _ = cold.feed(&feed(), 10.0);
        let _ = warm.feed(&feed(), 10.0);
        assert!(warm.last_liquid_in() < cold.last_liquid_in());
    }
}
