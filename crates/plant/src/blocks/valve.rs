//! Control valve with first-order actuator dynamics.

/// A linear control valve: flow capacity `cv` (kmol/h at 100 % open) with a
/// first-order actuator lag between the commanded and actual position.
///
/// This is the final control element of every loop in the plant — and the
/// thing the paper's faulty controller drives to 75 % instead of 11.48 %.
#[derive(Debug, Clone, PartialEq)]
pub struct Valve {
    cv: f64,
    tau_s: f64,
    opening_pct: f64,
    command_pct: f64,
}

impl Valve {
    /// Creates a valve at an initial position.
    ///
    /// # Panics
    ///
    /// Panics if `cv` is not strictly positive or `tau_s` is negative.
    #[must_use]
    pub fn new(cv: f64, tau_s: f64, initial_pct: f64) -> Self {
        assert!(cv > 0.0, "cv must be positive");
        assert!(tau_s >= 0.0, "tau must be non-negative");
        let p = initial_pct.clamp(0.0, 100.0);
        Valve {
            cv,
            tau_s,
            opening_pct: p,
            command_pct: p,
        }
    }

    /// Flow capacity at 100 %, kmol/h.
    #[must_use]
    pub fn cv(&self) -> f64 {
        self.cv
    }

    /// Commands a new position (clamped to 0–100 %).
    pub fn command(&mut self, pct: f64) {
        self.command_pct = pct.clamp(0.0, 100.0);
    }

    /// The last commanded position.
    #[must_use]
    pub fn command_pct(&self) -> f64 {
        self.command_pct
    }

    /// The actual (lagged) position.
    #[must_use]
    pub fn opening_pct(&self) -> f64 {
        self.opening_pct
    }

    /// Advances the actuator by `dt_s` seconds.
    pub fn step(&mut self, dt_s: f64) {
        assert!(dt_s > 0.0, "dt must be positive");
        if self.tau_s == 0.0 {
            self.opening_pct = self.command_pct;
        } else {
            let alpha = dt_s / (self.tau_s + dt_s);
            self.opening_pct += alpha * (self.command_pct - self.opening_pct);
        }
    }

    /// Current flow demand, kmol/h, limited by what is available upstream.
    #[must_use]
    pub fn flow(&self, available_kmolh: f64) -> f64 {
        (self.cv * self.opening_pct / 100.0).min(available_kmolh.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_approaches_command() {
        let mut v = Valve::new(1000.0, 2.0, 10.0);
        v.command(50.0);
        for _ in 0..10 {
            v.step(0.1);
        }
        assert!(v.opening_pct() > 10.0 && v.opening_pct() < 50.0);
        for _ in 0..1000 {
            v.step(0.1);
        }
        assert!((v.opening_pct() - 50.0).abs() < 0.01);
    }

    #[test]
    fn zero_tau_is_instant() {
        let mut v = Valve::new(100.0, 0.0, 0.0);
        v.command(75.0);
        v.step(0.1);
        assert_eq!(v.opening_pct(), 75.0);
    }

    #[test]
    fn flow_limited_by_supply() {
        let v = Valve::new(1000.0, 2.0, 50.0);
        assert!((v.flow(1e9) - 500.0).abs() < 1e-9);
        assert_eq!(v.flow(100.0), 100.0);
        assert_eq!(v.flow(-5.0), 0.0);
    }

    #[test]
    fn commands_clamped() {
        let mut v = Valve::new(100.0, 1.0, 0.0);
        v.command(150.0);
        assert_eq!(v.command_pct(), 100.0);
        v.command(-10.0);
        assert_eq!(v.command_pct(), 0.0);
    }
}
