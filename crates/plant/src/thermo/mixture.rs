//! Mixture compositions.

use std::fmt;
use std::ops::Index;

use super::species::{Component, N_COMPONENTS};

/// A normalized molar composition over the fixed component set.
///
/// Invariant: every fraction is non-negative and they sum to 1 (enforced at
/// construction by normalization).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Composition {
    z: [f64; N_COMPONENTS],
}

impl Composition {
    /// Creates a composition from mole amounts or fractions (normalized).
    ///
    /// # Panics
    ///
    /// Panics if any entry is negative, not finite, or the sum is zero.
    #[must_use]
    pub fn new(raw: [f64; N_COMPONENTS]) -> Self {
        let sum: f64 = raw.iter().sum();
        assert!(
            raw.iter().all(|v| v.is_finite() && *v >= 0.0),
            "fractions must be finite and non-negative: {raw:?}"
        );
        assert!(sum > 0.0, "composition cannot be empty");
        let mut z = raw;
        for v in &mut z {
            *v /= sum;
        }
        Composition { z }
    }

    /// The paper's raw natural-gas feed: mostly methane with CO₂, N₂ and
    /// condensable C₂–C₄ heavies.
    #[must_use]
    pub fn raw_natural_gas() -> Self {
        // N2, CO2, C1, C2, C3, iC4, nC4
        Composition::new([0.010, 0.020, 0.800, 0.100, 0.040, 0.015, 0.015])
    }

    /// A pure component.
    #[must_use]
    pub fn pure(c: Component) -> Self {
        let mut z = [0.0; N_COMPONENTS];
        z[c.index()] = 1.0;
        Composition { z }
    }

    /// The fraction of component `c`.
    #[must_use]
    pub fn fraction(&self, c: Component) -> f64 {
        self.z[c.index()]
    }

    /// The raw fraction array in canonical order.
    #[must_use]
    pub fn fractions(&self) -> &[f64; N_COMPONENTS] {
        &self.z
    }

    /// Mole-weighted mean molecular weight, kg/kmol.
    #[must_use]
    pub fn molecular_weight(&self) -> f64 {
        Component::ALL
            .iter()
            .map(|&c| self.fraction(c) * c.mw())
            .sum()
    }

    /// Mole-weighted liquid molar volume, m³/kmol.
    #[must_use]
    pub fn liquid_molar_volume(&self) -> f64 {
        Component::ALL
            .iter()
            .map(|&c| self.fraction(c) * c.liquid_molar_volume())
            .sum()
    }

    /// Mixes two compositions with the given molar amounts.
    ///
    /// # Panics
    ///
    /// Panics if both amounts are zero or either is negative.
    #[must_use]
    pub fn mix(a: &Composition, na: f64, b: &Composition, nb: f64) -> Composition {
        assert!(na >= 0.0 && nb >= 0.0, "amounts must be non-negative");
        assert!(na + nb > 0.0, "cannot mix two empty streams");
        let mut z = [0.0; N_COMPONENTS];
        for (i, zi) in z.iter_mut().enumerate() {
            *zi = a.z[i] * na + b.z[i] * nb;
        }
        Composition::new(z)
    }
}

impl Index<Component> for Composition {
    type Output = f64;
    fn index(&self, c: Component) -> &f64 {
        &self.z[c.index()]
    }
}

impl fmt::Display for Composition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in Component::ALL {
            let v = self.fraction(c);
            if v > 1e-9 {
                if !first {
                    write!(f, " ")?;
                }
                write!(f, "{c}:{v:.4}")?;
                first = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evm_sim::SimRng;

    #[test]
    fn normalization() {
        let c = Composition::new([2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0]);
        assert!((c.fraction(Component::N2) - 0.5).abs() < 1e-12);
        assert!((c.fraction(Component::NC4) - 0.5).abs() < 1e-12);
        let sum: f64 = c.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn feed_composition_sums_to_one() {
        let z = Composition::raw_natural_gas();
        let sum: f64 = z.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((z[Component::C1] - 0.8).abs() < 1e-9);
    }

    #[test]
    fn pure_component() {
        let c = Composition::pure(Component::C3);
        assert_eq!(c.fraction(Component::C3), 1.0);
        assert!((c.molecular_weight() - 44.10).abs() < 1e-9);
    }

    #[test]
    fn mixing_conserves_moles() {
        let a = Composition::pure(Component::C1);
        let b = Composition::pure(Component::C3);
        let m = Composition::mix(&a, 3.0, &b, 1.0);
        assert!((m.fraction(Component::C1) - 0.75).abs() < 1e-12);
        assert!((m.fraction(Component::C3) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_composition_panics() {
        let _ = Composition::new([0.0; N_COMPONENTS]);
    }

    fn random_raw(rng: &mut SimRng) -> [f64; N_COMPONENTS] {
        let mut raw = [0.0; N_COMPONENTS];
        for x in &mut raw {
            *x = rng.range(0.001, 10.0);
        }
        raw
    }

    #[test]
    fn random_compositions_are_normalized() {
        let mut rng = SimRng::seed_from(0x717E);
        for _ in 0..512 {
            let c = Composition::new(random_raw(&mut rng));
            let sum: f64 = c.fractions().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn random_mixes_stay_between_endpoints() {
        let mut rng = SimRng::seed_from(0x717F);
        for _ in 0..512 {
            let a = Composition::new(random_raw(&mut rng));
            let b = Composition::new(random_raw(&mut rng));
            let na = rng.range(0.1, 100.0);
            let nb = rng.range(0.1, 100.0);
            let m = Composition::mix(&a, na, &b, nb);
            for c in Component::ALL {
                let lo = a.fraction(c).min(b.fraction(c)) - 1e-9;
                let hi = a.fraction(c).max(b.fraction(c)) + 1e-9;
                assert!(m.fraction(c) >= lo && m.fraction(c) <= hi);
            }
        }
    }
}
