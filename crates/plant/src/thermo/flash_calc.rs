//! Vapor–liquid equilibrium: Wilson K-values and Rachford–Rice flash.
//!
//! The Wilson correlation estimates equilibrium ratios from critical
//! properties only — standard practice for light-hydrocarbon systems away
//! from the critical region, and exactly the fidelity level needed here:
//! the EVM experiments depend on *how much liquid condenses at the chiller
//! outlet*, not on fourth-digit VLE accuracy.

use super::mixture::Composition;
use super::species::{Component, N_COMPONENTS};

/// Wilson K-value of component `c` at temperature `t_k` (K) and pressure
/// `p_kpa` (kPa):
///
/// `K = (Pc/P) · exp[5.373 (1 + ω)(1 − Tc/T)]`
///
/// # Panics
///
/// Panics if temperature or pressure is not strictly positive.
#[must_use]
pub fn wilson_k(c: Component, t_k: f64, p_kpa: f64) -> f64 {
    assert!(t_k > 0.0, "temperature must be positive (K)");
    assert!(p_kpa > 0.0, "pressure must be positive (kPa)");
    (c.pc_kpa() / p_kpa) * (5.373 * (1.0 + c.omega()) * (1.0 - c.tc_k() / t_k)).exp()
}

/// Result of an isothermal two-phase flash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashResult {
    /// Molar vapor fraction `V/F` in `[0, 1]`.
    pub vapor_fraction: f64,
    /// Liquid-phase composition.
    pub liquid: Composition,
    /// Vapor-phase composition.
    pub vapor: Composition,
}

impl FlashResult {
    /// `true` if both phases are present.
    #[must_use]
    pub fn is_two_phase(&self) -> bool {
        self.vapor_fraction > 0.0 && self.vapor_fraction < 1.0
    }
}

/// Isothermal flash of feed `z` at `t_k` / `p_kpa` using Wilson K-values
/// and a bisection solve of the Rachford–Rice equation
/// `Σ zᵢ(Kᵢ−1)/(1 + V(Kᵢ−1)) = 0`.
#[must_use]
pub fn flash(z: &Composition, t_k: f64, p_kpa: f64) -> FlashResult {
    let k: [f64; N_COMPONENTS] = std::array::from_fn(|i| wilson_k(Component::ALL[i], t_k, p_kpa));

    let rr = |v: f64| -> f64 {
        Component::ALL
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let zi = z.fraction(c);
                zi * (k[i] - 1.0) / (1.0 + v * (k[i] - 1.0))
            })
            .sum()
    };

    // Phase-boundary checks: f(0) <= 0 -> subcooled liquid; f(1) >= 0 ->
    // superheated vapor.
    if rr(0.0) <= 0.0 {
        return FlashResult {
            vapor_fraction: 0.0,
            liquid: *z,
            vapor: vapor_comp(z, &k, 0.0),
        };
    }
    if rr(1.0) >= 0.0 {
        return FlashResult {
            vapor_fraction: 1.0,
            liquid: liquid_comp(z, &k, 1.0),
            vapor: *z,
        };
    }

    // Bisection on [0, 1]: rr is monotone decreasing in V.
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if rr(mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let v = 0.5 * (lo + hi);
    FlashResult {
        vapor_fraction: v,
        liquid: liquid_comp(z, &k, v),
        vapor: vapor_comp(z, &k, v),
    }
}

fn liquid_comp(z: &Composition, k: &[f64], v: f64) -> Composition {
    let mut x = [0.0; N_COMPONENTS];
    for (i, &c) in Component::ALL.iter().enumerate() {
        x[i] = z.fraction(c) / (1.0 + v * (k[i] - 1.0));
    }
    Composition::new(x)
}

fn vapor_comp(z: &Composition, k: &[f64], v: f64) -> Composition {
    let mut y = [0.0; N_COMPONENTS];
    for (i, &c) in Component::ALL.iter().enumerate() {
        y[i] = z.fraction(c) * k[i] / (1.0 + v * (k[i] - 1.0));
    }
    Composition::new(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use evm_sim::SimRng;

    const LTS_T: f64 = 253.15; // -20 C
    const LTS_P: f64 = 6000.0;

    #[test]
    fn wilson_k_ordering_follows_volatility() {
        // At LTS conditions: methane is supercritical-light (K >> 1),
        // butanes are heavy (K << 1).
        let k_c1 = wilson_k(Component::C1, LTS_T, LTS_P);
        let k_c3 = wilson_k(Component::C3, LTS_T, LTS_P);
        let k_nc4 = wilson_k(Component::NC4, LTS_T, LTS_P);
        assert!(k_c1 > 1.0, "K_C1 = {k_c1}");
        assert!(k_c3 < 1.0, "K_C3 = {k_c3}");
        assert!(k_nc4 < k_c3, "butane heavier than propane");
    }

    #[test]
    fn wilson_k_increases_with_temperature() {
        let cold = wilson_k(Component::C3, 250.0, 6000.0);
        let warm = wilson_k(Component::C3, 300.0, 6000.0);
        assert!(warm > cold);
    }

    #[test]
    fn chilled_feed_is_two_phase() {
        let feed = Composition::raw_natural_gas();
        let res = flash(&feed, LTS_T, LTS_P);
        assert!(res.is_two_phase(), "V = {}", res.vapor_fraction);
        // Most of the stream stays gas; a meaningful liquid cut forms.
        assert!(res.vapor_fraction > 0.5 && res.vapor_fraction < 0.99);
        // Liquid is enriched in propane+.
        assert!(res.liquid.fraction(Component::C3) > feed.fraction(Component::C3));
        assert!(res.vapor.fraction(Component::C1) > feed.fraction(Component::C1));
    }

    #[test]
    fn warm_high_pressure_feed_is_mostly_vapor() {
        let feed = Composition::raw_natural_gas();
        let res = flash(&feed, 303.15, 6200.0);
        assert!(res.vapor_fraction > 0.9, "V = {}", res.vapor_fraction);
    }

    #[test]
    fn hot_feed_is_all_vapor() {
        let feed = Composition::raw_natural_gas();
        let res = flash(&feed, 400.0, 3000.0);
        assert_eq!(res.vapor_fraction, 1.0);
        assert_eq!(res.vapor, feed);
    }

    #[test]
    fn cryogenic_butane_is_all_liquid() {
        let feed = Composition::pure(Component::NC4);
        let res = flash(&feed, 250.0, 2000.0);
        assert_eq!(res.vapor_fraction, 0.0);
        assert_eq!(res.liquid, feed);
    }

    /// Draws a random feed composition and flash conditions from a seeded
    /// generator.
    fn random_case(rng: &mut SimRng) -> (Composition, f64, f64) {
        let mut raw = [0.0; N_COMPONENTS];
        for x in &mut raw {
            *x = rng.range(0.01, 10.0);
        }
        (
            Composition::new(raw),
            rng.range(200.0, 400.0),
            rng.range(500.0, 8000.0),
        )
    }

    /// Component material balance: V·yᵢ + (1−V)·xᵢ = zᵢ, over many random
    /// feeds and conditions.
    #[test]
    fn flash_material_balance_holds_randomly() {
        let mut rng = SimRng::seed_from(0xF1A5);
        for _ in 0..256 {
            let (z, t, p) = random_case(&mut rng);
            let res = flash(&z, t, p);
            let v = res.vapor_fraction;
            for c in Component::ALL {
                let recon = v * res.vapor.fraction(c) + (1.0 - v) * res.liquid.fraction(c);
                assert!(
                    (recon - z.fraction(c)).abs() < 1e-6,
                    "{c}: {recon} vs {}",
                    z.fraction(c)
                );
            }
        }
    }

    /// Phase compositions are valid compositions.
    #[test]
    fn flash_phases_normalized_randomly() {
        let mut rng = SimRng::seed_from(0xF1A6);
        for _ in 0..256 {
            let (z, t, p) = random_case(&mut rng);
            let res = flash(&z, t, p);
            let sx: f64 = res.liquid.fractions().iter().sum();
            let sy: f64 = res.vapor.fractions().iter().sum();
            assert!((sx - 1.0).abs() < 1e-9);
            assert!((sy - 1.0).abs() < 1e-9);
            assert!((0.0..=1.0).contains(&res.vapor_fraction));
        }
    }

    /// Cooling at fixed pressure can only condense more.
    #[test]
    fn cooling_condenses_randomly() {
        let mut rng = SimRng::seed_from(0xF1A7);
        for _ in 0..256 {
            let t = rng.range(220.0, 350.0);
            let p = rng.range(1000.0, 7000.0);
            let z = Composition::raw_natural_gas();
            let warm = flash(&z, t + 20.0, p);
            let cold = flash(&z, t, p);
            assert!(cold.vapor_fraction <= warm.vapor_fraction + 1e-9);
        }
    }
}
