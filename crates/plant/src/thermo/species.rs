//! Pure-component property data.
//!
//! The paper's feed: "a raw natural gas stream containing N2, CO2, and C1
//! through n-C4" (§4.1). Critical properties and acentric factors are the
//! standard values (Reid/Prausnitz/Poling tables); liquid densities are
//! saturated values used for molar-volume (level) calculations.

use std::fmt;

/// Number of components in the fixed system.
pub const N_COMPONENTS: usize = 7;

/// The seven components of the raw natural gas feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Nitrogen.
    N2,
    /// Carbon dioxide.
    Co2,
    /// Methane.
    C1,
    /// Ethane.
    C2,
    /// Propane.
    C3,
    /// Isobutane.
    IC4,
    /// n-Butane.
    NC4,
}

impl Component {
    /// All components in canonical order (the index order used by
    /// [`crate::thermo::Composition`]).
    pub const ALL: [Component; N_COMPONENTS] = [
        Component::N2,
        Component::Co2,
        Component::C1,
        Component::C2,
        Component::C3,
        Component::IC4,
        Component::NC4,
    ];

    /// Canonical index of this component.
    #[must_use]
    pub fn index(self) -> usize {
        Component::ALL
            .iter()
            .position(|&c| c == self)
            .expect("component in ALL")
    }

    /// Critical temperature, K.
    #[must_use]
    pub fn tc_k(self) -> f64 {
        match self {
            Component::N2 => 126.2,
            Component::Co2 => 304.2,
            Component::C1 => 190.6,
            Component::C2 => 305.3,
            Component::C3 => 369.8,
            Component::IC4 => 408.1,
            Component::NC4 => 425.1,
        }
    }

    /// Critical pressure, kPa.
    #[must_use]
    pub fn pc_kpa(self) -> f64 {
        match self {
            Component::N2 => 3394.0,
            Component::Co2 => 7382.0,
            Component::C1 => 4599.0,
            Component::C2 => 4872.0,
            Component::C3 => 4248.0,
            Component::IC4 => 3648.0,
            Component::NC4 => 3796.0,
        }
    }

    /// Acentric factor (dimensionless).
    #[must_use]
    pub fn omega(self) -> f64 {
        match self {
            Component::N2 => 0.037,
            Component::Co2 => 0.225,
            Component::C1 => 0.011,
            Component::C2 => 0.099,
            Component::C3 => 0.152,
            Component::IC4 => 0.186,
            Component::NC4 => 0.200,
        }
    }

    /// Molecular weight, kg/kmol.
    #[must_use]
    pub fn mw(self) -> f64 {
        match self {
            Component::N2 => 28.01,
            Component::Co2 => 44.01,
            Component::C1 => 16.04,
            Component::C2 => 30.07,
            Component::C3 => 44.10,
            Component::IC4 => 58.12,
            Component::NC4 => 58.12,
        }
    }

    /// Saturated liquid density, kg/m³ (used for liquid molar volume in
    /// vessel level calculations).
    #[must_use]
    pub fn liquid_density(self) -> f64 {
        match self {
            Component::N2 => 807.0,
            Component::Co2 => 1101.0,
            Component::C1 => 422.0,
            Component::C2 => 544.0,
            Component::C3 => 582.0,
            Component::IC4 => 563.0,
            Component::NC4 => 601.0,
        }
    }

    /// Liquid molar volume, m³/kmol.
    #[must_use]
    pub fn liquid_molar_volume(self) -> f64 {
        self.mw() / self.liquid_density()
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Component::N2 => "N2",
            Component::Co2 => "CO2",
            Component::C1 => "C1",
            Component::C2 => "C2",
            Component::C3 => "C3",
            Component::IC4 => "iC4",
            Component::NC4 => "nC4",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_roundtrip() {
        for (i, c) in Component::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn volatility_ordering_is_physical() {
        // Critical temperature increases with molecular size for the
        // hydrocarbon series.
        assert!(Component::C1.tc_k() < Component::C2.tc_k());
        assert!(Component::C2.tc_k() < Component::C3.tc_k());
        assert!(Component::C3.tc_k() < Component::IC4.tc_k());
        assert!(Component::IC4.tc_k() < Component::NC4.tc_k());
    }

    #[test]
    fn molar_volumes_are_sane() {
        for c in Component::ALL {
            let v = c.liquid_molar_volume();
            assert!(v > 0.02 && v < 0.15, "{c}: {v}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Component::IC4.to_string(), "iC4");
        assert_eq!(Component::Co2.to_string(), "CO2");
    }
}
