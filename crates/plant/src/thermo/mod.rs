//! Thermodynamics: component data, compositions, K-values and flash.

mod flash_calc;
mod mixture;
mod species;

pub use flash_calc::{flash, wilson_k, FlashResult};
pub use mixture::Composition;
pub use species::{Component, N_COMPONENTS};
