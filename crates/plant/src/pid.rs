//! PID regulation with second-order input filtering.
//!
//! The paper's LTS controllers "perform second order filtering with a PID
//! regulator" (§4.2). [`SecondOrderFilter`] is two cascaded first-order
//! lags; [`PidController`] is a positional PID with anti-windup clamping
//! and output limits — the form that compiles naturally to EVM bytecode
//! (see `evm-core::bytecode::builder`).

/// PID tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PidParams {
    /// Proportional gain (output units per PV unit of error).
    pub kp: f64,
    /// Integral time constant, seconds (0 disables integral action).
    pub ti_s: f64,
    /// Derivative time constant, seconds (0 disables derivative action).
    pub td_s: f64,
    /// Lower output limit.
    pub out_min: f64,
    /// Upper output limit.
    pub out_max: f64,
    /// `true` if the controller is reverse-acting (output decreases when
    /// PV rises above SP) — the usual form for level control via an
    /// *outlet* valve is direct-acting.
    pub reverse: bool,
}

impl PidParams {
    /// Creates PI parameters with output limits `[0, 100]` (valve %).
    #[must_use]
    pub fn pi(kp: f64, ti_s: f64) -> Self {
        PidParams {
            kp,
            ti_s,
            td_s: 0.0,
            out_min: 0.0,
            out_max: 100.0,
            reverse: false,
        }
    }

    /// Marks the loop reverse-acting.
    #[must_use]
    pub fn reverse_acting(mut self) -> Self {
        self.reverse = true;
        self
    }
}

/// A discrete positional PID with clamping anti-windup.
#[derive(Debug, Clone, PartialEq)]
pub struct PidController {
    params: PidParams,
    setpoint: f64,
    integral: f64,
    last_pv: Option<f64>,
    last_output: f64,
}

impl PidController {
    /// Creates a controller at the given setpoint with zero state.
    #[must_use]
    pub fn new(params: PidParams, setpoint: f64) -> Self {
        PidController {
            params,
            setpoint,
            integral: 0.0,
            last_pv: None,
            last_output: 0.0,
        }
    }

    /// The current setpoint.
    #[must_use]
    pub fn setpoint(&self) -> f64 {
        self.setpoint
    }

    /// Changes the setpoint (mode changes).
    pub fn set_setpoint(&mut self, sp: f64) {
        self.setpoint = sp;
    }

    /// The tuning parameters.
    #[must_use]
    pub fn params(&self) -> &PidParams {
        &self.params
    }

    /// Pre-loads the integrator so that with PV at setpoint the output
    /// equals `output` — bumpless initialization at a known operating
    /// point.
    pub fn preload(&mut self, output: f64) {
        self.integral = output.clamp(self.params.out_min, self.params.out_max);
        self.last_output = self.integral;
        self.last_pv = None;
    }

    /// One control-step update: returns the actuator command.
    ///
    /// `dt_s` is the time since the previous call.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not strictly positive.
    pub fn update(&mut self, pv: f64, dt_s: f64) -> f64 {
        assert!(dt_s > 0.0, "dt must be positive");
        let sign = if self.params.reverse { -1.0 } else { 1.0 };
        // Direct-acting error convention for outlet-valve level control:
        // PV above SP -> positive error -> open the valve.
        let error = sign * (pv - self.setpoint);

        let p = self.params.kp * error;

        if self.params.ti_s > 0.0 {
            self.integral += self.params.kp * error * dt_s / self.params.ti_s;
        }

        let d = if self.params.td_s > 0.0 {
            match self.last_pv {
                Some(prev) => sign * self.params.kp * self.params.td_s * (pv - prev) / dt_s,
                None => 0.0,
            }
        } else {
            0.0
        };
        self.last_pv = Some(pv);

        // Clamping anti-windup: clamp the integrator so P+I stays in range.
        self.integral = self
            .integral
            .clamp(self.params.out_min - p, self.params.out_max - p);

        let out = (p + self.integral + d).clamp(self.params.out_min, self.params.out_max);
        self.last_output = out;
        out
    }

    /// The most recent output.
    #[must_use]
    pub fn last_output(&self) -> f64 {
        self.last_output
    }
}

/// Two cascaded first-order lags: the paper's "second order filter".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecondOrderFilter {
    tau_s: f64,
    stage1: Option<f64>,
    stage2: Option<f64>,
}

impl SecondOrderFilter {
    /// Creates a filter with per-stage time constant `tau_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `tau_s` is negative.
    #[must_use]
    pub fn new(tau_s: f64) -> Self {
        assert!(tau_s >= 0.0, "time constant must be non-negative");
        SecondOrderFilter {
            tau_s,
            stage1: None,
            stage2: None,
        }
    }

    /// Filters one sample.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not strictly positive.
    pub fn update(&mut self, input: f64, dt_s: f64) -> f64 {
        assert!(dt_s > 0.0, "dt must be positive");
        if self.tau_s == 0.0 {
            self.stage1 = Some(input);
            self.stage2 = Some(input);
            return input;
        }
        let alpha = dt_s / (self.tau_s + dt_s);
        let s1 = match self.stage1 {
            Some(prev) => prev + alpha * (input - prev),
            None => input,
        };
        let s2 = match self.stage2 {
            Some(prev) => prev + alpha * (s1 - prev),
            None => s1,
        };
        self.stage1 = Some(s1);
        self.stage2 = Some(s2);
        s2
    }

    /// The current filtered value, if any sample has been seen.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        self.stage2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_action_direct_and_reverse() {
        let mut direct = PidController::new(
            PidParams {
                kp: 2.0,
                ti_s: 0.0,
                td_s: 0.0,
                out_min: -100.0,
                out_max: 100.0,
                reverse: false,
            },
            50.0,
        );
        // PV above SP: direct-acting output positive.
        assert!((direct.update(60.0, 1.0) - 20.0).abs() < 1e-12);

        let mut reverse = PidController::new(
            PidParams {
                kp: 2.0,
                ti_s: 0.0,
                td_s: 0.0,
                out_min: -100.0,
                out_max: 100.0,
                reverse: true,
            },
            50.0,
        );
        assert!((reverse.update(60.0, 1.0) + 20.0).abs() < 1e-12);
    }

    #[test]
    fn integral_accumulates_and_clamps() {
        let mut pid = PidController::new(PidParams::pi(1.0, 10.0), 0.0);
        for _ in 0..1000 {
            pid.update(10.0, 1.0);
        }
        // Saturated at out_max, not beyond.
        assert_eq!(pid.last_output(), 100.0);
        // And recovers quickly once the error flips (anti-windup).
        let mut steps = 0;
        while pid.update(-10.0, 1.0) >= 100.0 && steps < 10 {
            steps += 1;
        }
        assert!(steps < 10, "windup: output stuck at max");
    }

    #[test]
    fn preload_is_bumpless() {
        let mut pid = PidController::new(PidParams::pi(2.0, 50.0), 50.0);
        pid.preload(11.48);
        // At setpoint the first output equals the preload.
        let out = pid.update(50.0, 0.25);
        assert!((out - 11.48).abs() < 1e-9, "got {out}");
    }

    #[test]
    fn derivative_kicks_on_pv_change() {
        let params = PidParams {
            kp: 1.0,
            ti_s: 0.0,
            td_s: 5.0,
            out_min: -100.0,
            out_max: 100.0,
            reverse: false,
        };
        let mut pid = PidController::new(params, 0.0);
        let first = pid.update(0.0, 1.0);
        let kick = pid.update(2.0, 1.0);
        assert!(kick > first + 5.0, "derivative should amplify the step");
    }

    #[test]
    fn closed_loop_integrator_plant_settles() {
        // Plant: pure integrator dx/dt = -0.05 * u + 0.5 (inflow), PID on
        // outlet. Start above setpoint, must settle near SP.
        let mut pid = PidController::new(PidParams::pi(4.0, 60.0), 50.0);
        pid.preload(10.0);
        let mut level = 70.0f64;
        let dt = 0.25;
        for _ in 0..40_000 {
            let u = pid.update(level, dt);
            level += (0.5 - 0.05 * u) * dt * 0.2;
        }
        assert!((level - 50.0).abs() < 1.0, "level settled at {level}");
    }

    #[test]
    fn filter_converges_to_step_and_lags() {
        let mut f = SecondOrderFilter::new(2.0);
        let first = f.update(1.0, 0.1);
        assert_eq!(first, 1.0, "first sample initializes both stages");
        let mut g = SecondOrderFilter::new(2.0);
        g.update(0.0, 0.1);
        let early = g.update(1.0, 0.1);
        assert!(early < 0.01, "two-stage lag must be slow initially");
        let mut last = early;
        for _ in 0..2_000 {
            last = g.update(1.0, 0.1);
        }
        assert!((last - 1.0).abs() < 1e-3, "converges to input, got {last}");
    }

    #[test]
    fn zero_tau_filter_is_passthrough() {
        let mut f = SecondOrderFilter::new(0.0);
        assert_eq!(f.update(3.5, 0.1), 3.5);
        assert_eq!(f.value(), Some(3.5));
    }

    #[test]
    fn filter_attenuates_noise() {
        // Alternating +/-1 noise should be strongly attenuated.
        let mut f = SecondOrderFilter::new(5.0);
        let mut out = 0.0;
        for i in 0..1000 {
            let x = if i % 2 == 0 { 1.0 } else { -1.0 };
            out = f.update(x, 0.1);
        }
        assert!(out.abs() < 0.05, "noise leak {out}");
    }
}
