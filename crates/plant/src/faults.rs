//! Fault library for sensors, actuators and controllers.
//!
//! The Fig. 6b scenario is a *controller* fault: Ctrl-A "sets a wrong valve
//! output level (75 % instead of 11.48 %)". [`ActuatorFault::StuckOutput`]
//! is that fault; the others let the experiments in E14 explore the wider
//! space the paper's §1.2 challenge 4 describes.

use evm_sim::SimRng;

/// A fault applied to a controller's *output* before it reaches the
/// actuator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActuatorFault {
    /// Output frozen at a fixed value — the paper's scenario (75 %).
    StuckOutput(f64),
    /// A constant offset added to the correct output.
    Bias(f64),
    /// Output drifts linearly at `rate` per second from fault onset.
    Drift {
        /// Drift rate in output units per second.
        rate_per_s: f64,
    },
    /// Correct value replaced by uniform noise in `[lo, hi]`.
    Erratic {
        /// Lower bound of the erratic output.
        lo: f64,
        /// Upper bound of the erratic output.
        hi: f64,
    },
}

impl ActuatorFault {
    /// The Fig. 6b fault: stuck at 75 %.
    #[must_use]
    pub fn paper_fault() -> Self {
        ActuatorFault::StuckOutput(75.0)
    }

    /// Applies the fault to a correct output value.
    ///
    /// `since_onset_s` is the time since the fault began; `rng` feeds the
    /// erratic variant.
    #[must_use]
    pub fn apply(&self, correct: f64, since_onset_s: f64, rng: &mut SimRng) -> f64 {
        match *self {
            ActuatorFault::StuckOutput(v) => v,
            ActuatorFault::Bias(b) => correct + b,
            ActuatorFault::Drift { rate_per_s } => correct + rate_per_s * since_onset_s,
            ActuatorFault::Erratic { lo, hi } => rng.range(lo, hi),
        }
    }
}

/// A fault applied to a *sensor* reading before it reaches the controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorFault {
    /// Reading frozen at the last good value.
    Stuck(f64),
    /// Additive Gaussian noise.
    Noisy {
        /// Standard deviation of the added noise.
        std_dev: f64,
    },
    /// Constant offset.
    Offset(f64),
}

impl SensorFault {
    /// Applies the fault to a true reading.
    #[must_use]
    pub fn apply(&self, truth: f64, rng: &mut SimRng) -> f64 {
        match *self {
            SensorFault::Stuck(v) => v,
            SensorFault::Noisy { std_dev } => truth + rng.normal(0.0, std_dev),
            SensorFault::Offset(o) => truth + o,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_ignores_input() {
        let mut rng = SimRng::seed_from(1);
        let f = ActuatorFault::paper_fault();
        assert_eq!(f.apply(11.48, 0.0, &mut rng), 75.0);
        assert_eq!(f.apply(99.0, 100.0, &mut rng), 75.0);
    }

    #[test]
    fn bias_and_drift() {
        let mut rng = SimRng::seed_from(2);
        assert_eq!(ActuatorFault::Bias(5.0).apply(10.0, 0.0, &mut rng), 15.0);
        let d = ActuatorFault::Drift { rate_per_s: 0.1 };
        assert!((d.apply(10.0, 50.0, &mut rng) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn erratic_in_bounds() {
        let mut rng = SimRng::seed_from(3);
        let f = ActuatorFault::Erratic { lo: 20.0, hi: 80.0 };
        for _ in 0..100 {
            let v = f.apply(50.0, 0.0, &mut rng);
            assert!((20.0..80.0).contains(&v));
        }
    }

    #[test]
    fn sensor_faults() {
        let mut rng = SimRng::seed_from(4);
        assert_eq!(SensorFault::Stuck(42.0).apply(10.0, &mut rng), 42.0);
        assert_eq!(SensorFault::Offset(-3.0).apply(10.0, &mut rng), 7.0);
        let noisy = SensorFault::Noisy { std_dev: 1.0 };
        let vals: Vec<f64> = (0..200).map(|_| noisy.apply(10.0, &mut rng)).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 10.0).abs() < 0.3);
    }
}
