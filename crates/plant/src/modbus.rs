//! ModBus-style register interface.
//!
//! In Fig. 5 the gateway node talks to UniSim over ModBus. This module
//! reproduces that boundary: plant tags are mapped to 16-bit holding
//! registers with per-tag scaling, so the wireless side exchanges exactly
//! the quantized values a real ModBus gateway would — including the
//! quantization error, which the controllers must tolerate.

use std::collections::BTreeMap;

use crate::Plant;

/// Errors from register operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModbusError {
    /// No mapping at this register address.
    UnknownRegister(u16),
    /// The register maps to a read-only tag.
    ReadOnly(u16),
    /// The underlying tag vanished (plant reconfiguration).
    TagMissing(String),
}

impl std::fmt::Display for ModbusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModbusError::UnknownRegister(a) => write!(f, "unknown register {a}"),
            ModbusError::ReadOnly(a) => write!(f, "register {a} is read-only"),
            ModbusError::TagMissing(t) => write!(f, "tag missing: {t}"),
        }
    }
}

impl std::error::Error for ModbusError {}

/// One register's mapping.
#[derive(Debug, Clone, PartialEq)]
struct RegisterEntry {
    tag: String,
    /// Engineering value = raw × scale + offset.
    scale: f64,
    offset: f64,
    writable: bool,
}

/// A register binding resolved once against a [`RegisterMap`]: the
/// address, scaling and backing tag are captured so steady-state access
/// skips the per-call map lookup entirely. This is what a real gateway
/// does when it assembles a cyclic poll list — resolve the addresses at
/// configuration time, then run pure register transactions.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundRegister {
    /// The bound register address.
    pub addr: u16,
    /// Engineering value = raw × scale + offset.
    pub scale: f64,
    /// Engineering offset.
    pub offset: f64,
    /// `true` for holding (writable) registers.
    pub writable: bool,
    /// The plant tag behind the register.
    pub tag: String,
}

/// Reads a bound register in engineering units, quantized through the
/// 16-bit wire exactly like [`RegisterMap::read_scaled`].
///
/// # Errors
///
/// [`ModbusError::TagMissing`] if the plant no longer has the tag.
pub fn read_bound(plant: &dyn Plant, reg: &BoundRegister) -> Result<f64, ModbusError> {
    let v = plant
        .read_tag(&reg.tag)
        .ok_or_else(|| ModbusError::TagMissing(reg.tag.clone()))?;
    let raw = ((v - reg.offset) / reg.scale)
        .round()
        .clamp(0.0, f64::from(u16::MAX)) as u16;
    Ok(f64::from(raw) * reg.scale + reg.offset)
}

/// Writes a bound holding register in engineering units, quantized
/// through the wire exactly like [`RegisterMap::write_scaled`].
///
/// # Errors
///
/// [`ModbusError::ReadOnly`] for an input binding, or
/// [`ModbusError::TagMissing`] if the plant rejects the tag.
pub fn write_bound(
    plant: &mut dyn Plant,
    reg: &BoundRegister,
    value: f64,
) -> Result<(), ModbusError> {
    if !reg.writable {
        return Err(ModbusError::ReadOnly(reg.addr));
    }
    let raw = ((value - reg.offset) / reg.scale)
        .round()
        .clamp(0.0, f64::from(u16::MAX));
    let quantized = raw * reg.scale + reg.offset;
    plant
        .write_tag(&reg.tag, quantized)
        .map_err(|_| ModbusError::TagMissing(reg.tag.clone()))
}

/// A ModBus register map over a [`Plant`]'s tags.
#[derive(Debug, Clone, Default)]
pub struct RegisterMap {
    regs: BTreeMap<u16, RegisterEntry>,
}

impl RegisterMap {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        RegisterMap::default()
    }

    /// Maps a read-only (input) register.
    pub fn map_input(&mut self, addr: u16, tag: impl Into<String>, scale: f64, offset: f64) {
        self.regs.insert(
            addr,
            RegisterEntry {
                tag: tag.into(),
                scale,
                offset,
                writable: false,
            },
        );
    }

    /// Maps a writable (holding) register.
    pub fn map_holding(&mut self, addr: u16, tag: impl Into<String>, scale: f64, offset: f64) {
        self.regs.insert(
            addr,
            RegisterEntry {
                tag: tag.into(),
                scale,
                offset,
                writable: true,
            },
        );
    }

    /// Number of mapped registers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// `true` if no registers are mapped.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// The tag behind a register, if mapped.
    #[must_use]
    pub fn tag_of(&self, addr: u16) -> Option<&str> {
        self.regs.get(&addr).map(|e| e.tag.as_str())
    }

    /// The input (read-only) register publishing `tag`, if mapped —
    /// lowest address wins when a tag is mapped twice.
    #[must_use]
    pub fn input_register_of(&self, tag: &str) -> Option<u16> {
        self.regs
            .iter()
            .find(|(_, e)| !e.writable && e.tag == tag)
            .map(|(&addr, _)| addr)
    }

    /// The holding (writable) register commanding `tag`, if mapped —
    /// lowest address wins when a tag is mapped twice.
    #[must_use]
    pub fn holding_register_of(&self, tag: &str) -> Option<u16> {
        self.regs
            .iter()
            .find(|(_, e)| e.writable && e.tag == tag)
            .map(|(&addr, _)| addr)
    }

    /// Resolves a register address into a [`BoundRegister`] carrying its
    /// scaling and backing tag, for lookup-free steady-state access.
    #[must_use]
    pub fn bind(&self, addr: u16) -> Option<BoundRegister> {
        self.regs.get(&addr).map(|e| BoundRegister {
            addr,
            scale: e.scale,
            offset: e.offset,
            writable: e.writable,
            tag: e.tag.clone(),
        })
    }

    /// Reads a register: fetches the tag, applies scaling, clamps into the
    /// u16 range.
    ///
    /// # Errors
    ///
    /// [`ModbusError::UnknownRegister`] or [`ModbusError::TagMissing`].
    pub fn read(&self, plant: &dyn Plant, addr: u16) -> Result<u16, ModbusError> {
        let e = self
            .regs
            .get(&addr)
            .ok_or(ModbusError::UnknownRegister(addr))?;
        let v = plant
            .read_tag(&e.tag)
            .ok_or_else(|| ModbusError::TagMissing(e.tag.clone()))?;
        let raw = ((v - e.offset) / e.scale).round();
        Ok(raw.clamp(0.0, f64::from(u16::MAX)) as u16)
    }

    /// Reads a register and converts back to engineering units (what the
    /// wireless sensor task publishes).
    ///
    /// # Errors
    ///
    /// Same as [`RegisterMap::read`].
    pub fn read_scaled(&self, plant: &dyn Plant, addr: u16) -> Result<f64, ModbusError> {
        let raw = self.read(plant, addr)?;
        let e = &self.regs[&addr];
        Ok(f64::from(raw) * e.scale + e.offset)
    }

    /// Writes a holding register in engineering units.
    ///
    /// # Errors
    ///
    /// [`ModbusError::UnknownRegister`], [`ModbusError::ReadOnly`], or
    /// [`ModbusError::TagMissing`] if the plant rejects the tag.
    pub fn write_scaled(
        &self,
        plant: &mut dyn Plant,
        addr: u16,
        value: f64,
    ) -> Result<(), ModbusError> {
        let e = self
            .regs
            .get(&addr)
            .ok_or(ModbusError::UnknownRegister(addr))?;
        if !e.writable {
            return Err(ModbusError::ReadOnly(addr));
        }
        // Quantize through the register exactly as the wire would.
        let raw = ((value - e.offset) / e.scale)
            .round()
            .clamp(0.0, f64::from(u16::MAX));
        let quantized = raw * e.scale + e.offset;
        plant
            .write_tag(&e.tag, quantized)
            .map_err(|_| ModbusError::TagMissing(e.tag.clone()))
    }

    /// The standard map for the gas plant: inputs at 30000+, holdings at
    /// 40000+ (conventional ModBus numbering), 0.01 engineering resolution
    /// for percentages and temperatures, 0.1 for flows.
    #[must_use]
    pub fn gas_plant_standard() -> Self {
        let mut m = RegisterMap::new();
        // Inputs (process variables).
        m.map_input(30001, "LTS.LiquidPct", 0.01, 0.0);
        m.map_input(30002, "InletSep.LevelPct", 0.01, 0.0);
        m.map_input(30003, "Chiller.OutletTempK", 0.01, 150.0);
        m.map_input(30004, "SalesGas.MolarFlow", 0.1, 0.0);
        m.map_input(30005, "SepLiq.MolarFlow", 0.1, 0.0);
        m.map_input(30006, "LTSLiq.MolarFlow", 0.1, 0.0);
        m.map_input(30007, "TowerFeed.MolarFlow", 0.1, 0.0);
        m.map_input(30008, "Column.PressureKPa", 0.1, 0.0);
        m.map_input(30009, "Column.SumpLevelPct", 0.01, 0.0);
        m.map_input(30010, "Column.DrumLevelPct", 0.01, 0.0);
        m.map_input(30011, "Column.TrayTempK", 0.01, 250.0);
        m.map_input(30012, "LTSLiqValve.OpeningPct", 0.01, 0.0);
        // Holdings (actuator commands).
        m.map_holding(40001, "SepLiqValve.Cmd", 0.01, 0.0);
        m.map_holding(40002, "LTSLiqValve.Cmd", 0.01, 0.0);
        m.map_holding(40003, "ChillerValve.Cmd", 0.01, 0.0);
        m.map_holding(40004, "SalesValve.Cmd", 0.01, 0.0);
        m.map_holding(40005, "BottomsValve.Cmd", 0.01, 0.0);
        m.map_holding(40006, "DistillateValve.Cmd", 0.01, 0.0);
        m.map_holding(40007, "ReboilerDuty.Cmd", 0.01, 0.0);
        m.map_holding(40008, "CondenserDuty.Cmd", 0.01, 0.0);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gasplant::GasPlant;

    #[test]
    fn standard_map_covers_all_loops() {
        let m = RegisterMap::gas_plant_standard();
        assert_eq!(m.len(), 20);
        assert_eq!(m.tag_of(30001), Some("LTS.LiquidPct"));
        assert_eq!(m.tag_of(40002), Some("LTSLiqValve.Cmd"));
        assert_eq!(m.tag_of(1), None);
    }

    #[test]
    fn read_roundtrips_within_quantization() {
        let plant = GasPlant::default();
        let m = RegisterMap::gas_plant_standard();
        let direct = plant.read_tag("LTS.LiquidPct").unwrap();
        let via_bus = m.read_scaled(&plant, 30001).unwrap();
        assert!((direct - via_bus).abs() <= 0.01, "{direct} vs {via_bus}");
    }

    #[test]
    fn write_applies_quantized_command() {
        let mut plant = GasPlant::default();
        let m = RegisterMap::gas_plant_standard();
        m.write_scaled(&mut plant, 40002, 75.004).unwrap();
        use crate::Plant;
        for _ in 0..200 {
            plant.step(0.1);
        }
        let opening = plant.read_tag("LTSLiqValve.OpeningPct").unwrap();
        assert!((opening - 75.0).abs() < 0.1, "opening {opening}");
    }

    #[test]
    fn guards_hold() {
        let mut plant = GasPlant::default();
        let m = RegisterMap::gas_plant_standard();
        assert_eq!(
            m.read(&plant, 12345).unwrap_err(),
            ModbusError::UnknownRegister(12345)
        );
        assert_eq!(
            m.write_scaled(&mut plant, 30001, 1.0).unwrap_err(),
            ModbusError::ReadOnly(30001)
        );
    }

    #[test]
    fn bound_register_matches_scaled_paths() {
        let mut plant = GasPlant::default();
        let m = RegisterMap::gas_plant_standard();
        let pv = m.bind(30001).expect("input bound");
        assert_eq!(pv.tag, "LTS.LiquidPct");
        assert!(!pv.writable);
        assert_eq!(
            read_bound(&plant, &pv).unwrap(),
            m.read_scaled(&plant, 30001).unwrap()
        );
        let cmd = m.bind(40002).expect("holding bound");
        assert!(cmd.writable);
        write_bound(&mut plant, &cmd, 75.004).unwrap();
        let via_map = m.read_scaled(&plant, 30012);
        assert!(via_map.is_ok(), "write landed through the bound register");
        assert_eq!(
            write_bound(&mut plant, &pv, 1.0).unwrap_err(),
            ModbusError::ReadOnly(30001)
        );
        assert_eq!(m.bind(12345), None);
    }

    #[test]
    fn temperature_offset_scaling() {
        let plant = GasPlant::default();
        let m = RegisterMap::gas_plant_standard();
        let t = m.read_scaled(&plant, 30003).unwrap();
        let direct = plant.read_tag("Chiller.OutletTempK").unwrap();
        assert!((t - direct).abs() <= 0.01);
        assert!(t > 150.0, "offset applied");
    }
}
