//! Task control blocks and the migratable task image.
//!
//! The paper's failover mechanism migrates "the task control block, stack,
//! data and timing/precedence-related metadata" (§4) between controllers.
//! [`TaskImage`] is exactly that byte-sized payload; its size drives how
//! many RT-Link slots a migration occupies (experiment E8).

use std::fmt;

use evm_sim::SimTime;

use crate::task::{TaskId, TaskSpec};

/// Runtime state of a task on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Eligible to run when highest-priority.
    Ready,
    /// Currently executing.
    Running,
    /// Waiting for its next period.
    Sleeping,
    /// Explicitly suspended (e.g. a Dormant controller replica).
    Suspended,
}

impl fmt::Display for TaskState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TaskState::Ready => "ready",
            TaskState::Running => "running",
            TaskState::Sleeping => "sleeping",
            TaskState::Suspended => "suspended",
        };
        f.write_str(s)
    }
}

/// The serializable image of a task: what actually crosses the network
/// during migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskImage {
    /// Saved register file (the VM's register window on an 8-bit AVR).
    pub registers: Vec<u8>,
    /// Stack snapshot.
    pub stack: Vec<u8>,
    /// Task-private data section (e.g. PID integrator state).
    pub data: Vec<u8>,
    /// Timing / precedence metadata size in bytes (period, deadline,
    /// offsets, precedence edges — serialized form).
    pub metadata_bytes: usize,
}

impl TaskImage {
    /// Creates an image with the given section sizes, filled with a
    /// deterministic pattern (contents only matter for attestation tests).
    #[must_use]
    pub fn with_sizes(registers: usize, stack: usize, data: usize, metadata_bytes: usize) -> Self {
        let fill = |n: usize, tag: u8| (0..n).map(|i| (i as u8).wrapping_mul(31) ^ tag).collect();
        TaskImage {
            registers: fill(registers, 0xA5),
            stack: fill(stack, 0x5A),
            data: fill(data, 0x3C),
            metadata_bytes,
        }
    }

    /// A typical EVM control-task image on the FireFly class of node:
    /// 32 B registers, 256 B stack, 64 B data, 32 B metadata.
    #[must_use]
    pub fn typical_control_task() -> Self {
        TaskImage::with_sizes(32, 256, 64, 32)
    }

    /// Total bytes that must cross the network.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.registers.len() + self.stack.len() + self.data.len() + self.metadata_bytes
    }
}

/// A task control block: spec + live state + image.
#[derive(Debug, Clone, PartialEq)]
pub struct Tcb {
    /// Kernel-assigned id.
    pub id: TaskId,
    /// The task's static parameters.
    pub spec: TaskSpec,
    /// Current state.
    pub state: TaskState,
    /// Migratable image.
    pub image: TaskImage,
    /// Last release time, if any.
    pub last_release: Option<SimTime>,
}

impl Tcb {
    /// Creates a TCB in the `Sleeping` state.
    #[must_use]
    pub fn new(id: TaskId, spec: TaskSpec, image: TaskImage) -> Self {
        Tcb {
            id,
            spec,
            state: TaskState::Sleeping,
            image,
            last_release: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evm_sim::SimDuration;

    #[test]
    fn image_size_sums_sections() {
        let img = TaskImage::with_sizes(32, 256, 64, 32);
        assert_eq!(img.size_bytes(), 384);
        assert_eq!(img.registers.len(), 32);
        assert_eq!(img.stack.len(), 256);
    }

    #[test]
    fn typical_image_is_stable() {
        let a = TaskImage::typical_control_task();
        let b = TaskImage::typical_control_task();
        assert_eq!(a, b, "image generation must be deterministic");
        assert_eq!(a.size_bytes(), 384);
    }

    #[test]
    fn tcb_starts_sleeping() {
        let spec = TaskSpec::new(
            "x",
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
        );
        let tcb = Tcb::new(TaskId(1), spec, TaskImage::typical_control_task());
        assert_eq!(tcb.state, TaskState::Sleeping);
        assert!(tcb.last_release.is_none());
    }

    #[test]
    fn state_display() {
        assert_eq!(TaskState::Suspended.to_string(), "suspended");
        assert_eq!(TaskState::Running.to_string(), "running");
    }
}
