//! Resource reservations: CPU, network bandwidth and energy.
//!
//! nano-RK's defining feature (paper §2.2): tasks own explicit budgets and
//! the kernel both *admits* against capacity and *enforces* at runtime.
//! The EVM's "runtime resource allocation" operation (§3.1.1 op 2)
//! allocates and re-allocates these reserves when tasks move between
//! nodes.

use std::fmt;

use evm_sim::SimDuration;

/// A CPU reservation: `budget` of execution every `period`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuReserve {
    /// Guaranteed execution budget per period.
    pub budget: SimDuration,
    /// Replenishment period.
    pub period: SimDuration,
}

impl CpuReserve {
    /// Creates a reserve.
    ///
    /// # Panics
    ///
    /// Panics if budget or period is zero, or budget exceeds period.
    #[must_use]
    pub fn new(budget: SimDuration, period: SimDuration) -> Self {
        assert!(!budget.is_zero(), "budget must be positive");
        assert!(!period.is_zero(), "period must be positive");
        assert!(budget <= period, "budget cannot exceed period");
        CpuReserve { budget, period }
    }

    /// Fraction of the CPU this reserve claims.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.budget.as_secs_f64() / self.period.as_secs_f64()
    }
}

impl fmt::Display for CpuReserve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu {}/{}", self.budget, self.period)
    }
}

/// A network reservation: TDMA slots per RT-Link cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetReserve {
    /// Slots this task may transmit in, per cycle.
    pub slots_per_cycle: u16,
    /// Usable payload per slot, bytes.
    pub payload_per_slot: usize,
    /// Cycle length.
    pub cycle: SimDuration,
}

impl NetReserve {
    /// Creates a network reserve.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero.
    #[must_use]
    pub fn new(slots_per_cycle: u16, payload_per_slot: usize, cycle: SimDuration) -> Self {
        assert!(slots_per_cycle > 0, "need at least one slot");
        assert!(payload_per_slot > 0, "payload must be positive");
        assert!(!cycle.is_zero(), "cycle must be positive");
        NetReserve {
            slots_per_cycle,
            payload_per_slot,
            cycle,
        }
    }

    /// Guaranteed goodput in bytes per second.
    #[must_use]
    pub fn bytes_per_sec(&self) -> f64 {
        self.slots_per_cycle as f64 * self.payload_per_slot as f64 / self.cycle.as_secs_f64()
    }
}

/// An energy reservation: average charge budget per day (nano-RK's virtual
/// energy reservations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReserve {
    /// Allowed consumption, mAh per day.
    pub mah_per_day: f64,
}

impl EnergyReserve {
    /// Creates an energy reserve.
    ///
    /// # Panics
    ///
    /// Panics if the budget is not strictly positive.
    #[must_use]
    pub fn new(mah_per_day: f64) -> Self {
        assert!(mah_per_day > 0.0, "energy budget must be positive");
        EnergyReserve { mah_per_day }
    }

    /// Equivalent average current, mA.
    #[must_use]
    pub fn average_current_ma(&self) -> f64 {
        self.mah_per_day / 24.0
    }
}

/// Per-node reserve pool: capacities and current allocations.
#[derive(Debug, Clone)]
pub struct ReserveSet {
    cpu: Vec<CpuReserve>,
    net: Vec<NetReserve>,
    energy: Vec<EnergyReserve>,
    /// Admissible CPU utilization ceiling (≤ 1.0; the schedulability test
    /// is the real gate, this is the reserve-accounting cap).
    pub cpu_capacity: f64,
    /// Slots per cycle this node may own in total.
    pub net_slot_capacity: u16,
    /// Node energy budget, mAh per day.
    pub energy_capacity_mah_per_day: f64,
}

/// Reason a reserve allocation was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReserveError {
    /// CPU utilization cap exceeded.
    Cpu,
    /// Slot capacity exceeded.
    Network,
    /// Energy budget exceeded.
    Energy,
}

impl fmt::Display for ReserveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReserveError::Cpu => "cpu reserve capacity exceeded",
            ReserveError::Network => "network slot capacity exceeded",
            ReserveError::Energy => "energy budget exceeded",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ReserveError {}

impl Default for ReserveSet {
    fn default() -> Self {
        ReserveSet {
            cpu: Vec::new(),
            net: Vec::new(),
            energy: Vec::new(),
            cpu_capacity: 1.0,
            net_slot_capacity: 8,
            energy_capacity_mah_per_day: 12.0, // ~0.5 mA average
        }
    }
}

impl ReserveSet {
    /// Creates a pool with default capacities.
    #[must_use]
    pub fn new() -> Self {
        ReserveSet::default()
    }

    /// Total CPU utilization currently reserved.
    #[must_use]
    pub fn cpu_utilization(&self) -> f64 {
        self.cpu.iter().map(CpuReserve::utilization).sum()
    }

    /// Total slots currently reserved.
    #[must_use]
    pub fn net_slots(&self) -> u16 {
        self.net.iter().map(|r| r.slots_per_cycle).sum()
    }

    /// Total energy currently reserved, mAh/day.
    #[must_use]
    pub fn energy_mah_per_day(&self) -> f64 {
        self.energy.iter().map(|r| r.mah_per_day).sum()
    }

    /// Attempts to allocate a CPU reserve.
    ///
    /// # Errors
    ///
    /// [`ReserveError::Cpu`] if the utilization cap would be exceeded.
    pub fn try_add_cpu(&mut self, r: CpuReserve) -> Result<(), ReserveError> {
        if self.cpu_utilization() + r.utilization() > self.cpu_capacity + 1e-12 {
            return Err(ReserveError::Cpu);
        }
        self.cpu.push(r);
        Ok(())
    }

    /// Attempts to allocate a network reserve.
    ///
    /// # Errors
    ///
    /// [`ReserveError::Network`] if slot capacity would be exceeded.
    pub fn try_add_net(&mut self, r: NetReserve) -> Result<(), ReserveError> {
        if self.net_slots() + r.slots_per_cycle > self.net_slot_capacity {
            return Err(ReserveError::Network);
        }
        self.net.push(r);
        Ok(())
    }

    /// Attempts to allocate an energy reserve.
    ///
    /// # Errors
    ///
    /// [`ReserveError::Energy`] if the daily budget would be exceeded.
    pub fn try_add_energy(&mut self, r: EnergyReserve) -> Result<(), ReserveError> {
        if self.energy_mah_per_day() + r.mah_per_day > self.energy_capacity_mah_per_day + 1e-12 {
            return Err(ReserveError::Energy);
        }
        self.energy.push(r);
        Ok(())
    }

    /// Releases a CPU reserve (first matching).
    pub fn release_cpu(&mut self, r: &CpuReserve) -> bool {
        match self.cpu.iter().position(|x| x == r) {
            Some(i) => {
                self.cpu.remove(i);
                true
            }
            None => false,
        }
    }

    /// Remaining CPU headroom (capacity minus reserved).
    #[must_use]
    pub fn cpu_headroom(&self) -> f64 {
        (self.cpu_capacity - self.cpu_utilization()).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn cpu_reserve_utilization() {
        let r = CpuReserve::new(ms(2), ms(10));
        assert!((r.utilization() - 0.2).abs() < 1e-12);
        assert_eq!(r.to_string(), "cpu 2.000ms/10.000ms");
    }

    #[test]
    fn net_reserve_goodput() {
        let r = NetReserve::new(2, 100, ms(250));
        assert!((r.bytes_per_sec() - 800.0).abs() < 1e-9);
    }

    #[test]
    fn energy_reserve_current() {
        let r = EnergyReserve::new(24.0);
        assert!((r.average_current_ma() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pool_admits_until_capacity() {
        let mut pool = ReserveSet::new();
        assert!(pool.try_add_cpu(CpuReserve::new(ms(5), ms(10))).is_ok());
        assert!(pool.try_add_cpu(CpuReserve::new(ms(4), ms(10))).is_ok());
        assert_eq!(
            pool.try_add_cpu(CpuReserve::new(ms(2), ms(10))),
            Err(ReserveError::Cpu)
        );
        assert!((pool.cpu_headroom() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn pool_releases_reserves() {
        let mut pool = ReserveSet::new();
        let r = CpuReserve::new(ms(5), ms(10));
        pool.try_add_cpu(r).unwrap();
        assert!(pool.release_cpu(&r));
        assert!(!pool.release_cpu(&r));
        assert_eq!(pool.cpu_utilization(), 0.0);
    }

    #[test]
    fn net_and_energy_caps() {
        let mut pool = ReserveSet::new();
        assert!(pool.try_add_net(NetReserve::new(8, 100, ms(250))).is_ok());
        assert_eq!(
            pool.try_add_net(NetReserve::new(1, 100, ms(250))),
            Err(ReserveError::Network)
        );
        assert!(pool.try_add_energy(EnergyReserve::new(12.0)).is_ok());
        assert_eq!(
            pool.try_add_energy(EnergyReserve::new(0.1)),
            Err(ReserveError::Energy)
        );
    }

    #[test]
    #[should_panic(expected = "budget cannot exceed period")]
    fn cpu_overbudget_panics() {
        let _ = CpuReserve::new(ms(11), ms(10));
    }
}
