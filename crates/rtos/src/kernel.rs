//! The per-node kernel facade.
//!
//! [`Kernel`] is what an EVM node drives: admit a task (schedulability +
//! reserve gated), remove one (extracting its migratable image), suspend /
//! resume replicas, and re-prioritize. It mirrors nano-RK's admission
//! discipline: **no task-set change takes effect unless the resulting set
//! passes the schedulability test** — a failed admission leaves the kernel
//! exactly as it was.

use std::fmt;

use evm_sim::SimDuration;

use crate::reserve::{CpuReserve, ReserveError, ReserveSet};
use crate::sched::analysis::{response_time_analysis, Verdict};
use crate::sched::priority::assign_rate_monotonic;
use crate::task::{TaskId, TaskSet, TaskSpec};
use crate::tcb::{TaskImage, TaskState, Tcb};

/// Why an admission or task-set change was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The resulting task set fails the schedulability test.
    NotSchedulable,
    /// A reserve capacity would be exceeded.
    Reserve(ReserveError),
    /// A task with this name is already hosted.
    DuplicateName(String),
    /// No such task.
    UnknownTask(TaskId),
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::NotSchedulable => write!(f, "task set would not be schedulable"),
            AdmitError::Reserve(e) => write!(f, "reserve refused: {e}"),
            AdmitError::DuplicateName(n) => write!(f, "task name already hosted: {n}"),
            AdmitError::UnknownTask(id) => write!(f, "unknown task {id}"),
        }
    }
}

impl std::error::Error for AdmitError {}

impl From<ReserveError> for AdmitError {
    fn from(e: ReserveError) -> Self {
        AdmitError::Reserve(e)
    }
}

/// A nano-RK-like kernel instance for one node.
#[derive(Debug, Clone)]
pub struct Kernel {
    name: String,
    tcbs: Vec<Tcb>,
    reserves: ReserveSet,
    next_id: u32,
    /// Execution cost of one EVM bytecode instruction on this node's MCU
    /// (8 MHz AVR ≈ 10 cycles per interpreted instruction ≈ 1.25 µs).
    instr_cost: SimDuration,
}

impl Kernel {
    /// Creates an empty kernel.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Kernel {
            name: name.into(),
            tcbs: Vec::new(),
            reserves: ReserveSet::new(),
            next_id: 1,
            instr_cost: SimDuration::from_micros(1),
        }
    }

    /// Node name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-instruction execution cost of this node's interpreter.
    #[must_use]
    pub fn instr_cost(&self) -> SimDuration {
        self.instr_cost
    }

    /// Overrides the per-instruction cost (heterogeneous nodes).
    pub fn set_instr_cost(&mut self, cost: SimDuration) {
        assert!(!cost.is_zero(), "instruction cost must be positive");
        self.instr_cost = cost;
    }

    /// The reserve pool.
    #[must_use]
    pub fn reserves(&self) -> &ReserveSet {
        &self.reserves
    }

    /// Mutable reserve pool (for capacity configuration).
    pub fn reserves_mut(&mut self) -> &mut ReserveSet {
        &mut self.reserves
    }

    /// All hosted TCBs (including suspended ones).
    #[must_use]
    pub fn tcbs(&self) -> &[Tcb] {
        &self.tcbs
    }

    /// Looks up a task by id.
    #[must_use]
    pub fn tcb(&self, id: TaskId) -> Option<&Tcb> {
        self.tcbs.iter().find(|t| t.id == id)
    }

    /// Looks up a task by name.
    #[must_use]
    pub fn tcb_by_name(&self, name: &str) -> Option<&Tcb> {
        self.tcbs.iter().find(|t| t.spec.name == name)
    }

    /// The task set of *active* (non-suspended) tasks, with current
    /// priorities.
    #[must_use]
    pub fn active_set(&self) -> TaskSet {
        self.tcbs
            .iter()
            .filter(|t| t.state != TaskState::Suspended)
            .map(|t| t.spec.clone())
            .collect()
    }

    /// Total utilization of active tasks.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.active_set().total_utilization()
    }

    /// Schedulability verdict for the current active set.
    #[must_use]
    pub fn verdict(&self) -> Verdict {
        let mut set = self.active_set();
        if set.is_empty() {
            return Verdict {
                schedulable: true,
                method: "empty",
                response_times: vec![],
            };
        }
        if !set.priorities_are_unique() {
            assign_rate_monotonic(&mut set);
        }
        response_time_analysis(&set)
    }

    /// Admits a new task: reserves first, then the schedulability gate.
    /// On success all active tasks are re-prioritized rate-monotonically
    /// (the EVM's op 4) and the new task starts `Sleeping`.
    ///
    /// # Errors
    ///
    /// [`AdmitError::DuplicateName`], [`AdmitError::Reserve`], or
    /// [`AdmitError::NotSchedulable`]. On error the kernel is unchanged.
    pub fn admit(
        &mut self,
        spec: TaskSpec,
        image: TaskImage,
        reserve: Option<CpuReserve>,
    ) -> Result<TaskId, AdmitError> {
        if self.tcb_by_name(&spec.name).is_some() {
            return Err(AdmitError::DuplicateName(spec.name));
        }
        // Trial set: active tasks + the newcomer, RM priorities.
        let mut trial = self.active_set();
        trial.push(spec.clone());
        assign_rate_monotonic(&mut trial);
        if !response_time_analysis(&trial).schedulable {
            return Err(AdmitError::NotSchedulable);
        }
        if let Some(r) = reserve {
            self.reserves.try_add_cpu(r)?;
        }
        // Commit: write back RM priorities to live TCBs by name.
        let id = TaskId(self.next_id);
        self.next_id += 1;
        let mut spec = spec;
        spec.priority = trial
            .tasks()
            .iter()
            .find(|t| t.name == spec.name)
            .and_then(|t| t.priority);
        for tcb in &mut self.tcbs {
            if tcb.state == TaskState::Suspended {
                continue;
            }
            if let Some(t) = trial.tasks().iter().find(|t| t.name == tcb.spec.name) {
                tcb.spec.priority = t.priority;
            }
        }
        self.tcbs.push(Tcb::new(id, spec, image));
        Ok(id)
    }

    /// Removes a task entirely, returning its TCB (the migration payload).
    ///
    /// # Errors
    ///
    /// [`AdmitError::UnknownTask`] if the id is not hosted.
    pub fn remove(&mut self, id: TaskId) -> Result<Tcb, AdmitError> {
        match self.tcbs.iter().position(|t| t.id == id) {
            Some(i) => Ok(self.tcbs.remove(i)),
            None => Err(AdmitError::UnknownTask(id)),
        }
    }

    /// Suspends a task (a Dormant/Backup replica consumes no CPU).
    ///
    /// # Errors
    ///
    /// [`AdmitError::UnknownTask`] if the id is not hosted.
    pub fn suspend(&mut self, id: TaskId) -> Result<(), AdmitError> {
        let tcb = self
            .tcbs
            .iter_mut()
            .find(|t| t.id == id)
            .ok_or(AdmitError::UnknownTask(id))?;
        tcb.state = TaskState::Suspended;
        Ok(())
    }

    /// Resumes a suspended task, re-running the schedulability gate.
    ///
    /// # Errors
    ///
    /// [`AdmitError::UnknownTask`] or [`AdmitError::NotSchedulable`]
    /// (in which case the task stays suspended).
    pub fn resume(&mut self, id: TaskId) -> Result<(), AdmitError> {
        let idx = self
            .tcbs
            .iter()
            .position(|t| t.id == id)
            .ok_or(AdmitError::UnknownTask(id))?;
        if self.tcbs[idx].state != TaskState::Suspended {
            return Ok(());
        }
        let mut trial = self.active_set();
        trial.push(self.tcbs[idx].spec.clone());
        assign_rate_monotonic(&mut trial);
        if !response_time_analysis(&trial).schedulable {
            return Err(AdmitError::NotSchedulable);
        }
        for tcb in &mut self.tcbs {
            if let Some(t) = trial.tasks().iter().find(|t| t.name == tcb.spec.name) {
                tcb.spec.priority = t.priority;
            }
        }
        self.tcbs[idx].state = TaskState::Sleeping;
        Ok(())
    }

    /// Explicitly re-prioritizes a task, gated by RTA.
    ///
    /// # Errors
    ///
    /// [`AdmitError::UnknownTask`] or [`AdmitError::NotSchedulable`]
    /// (in which case priorities are unchanged).
    pub fn set_priority(&mut self, id: TaskId, priority: u8) -> Result<(), AdmitError> {
        let idx = self
            .tcbs
            .iter()
            .position(|t| t.id == id)
            .ok_or(AdmitError::UnknownTask(id))?;
        let name = self.tcbs[idx].spec.name.clone();
        let mut trial = self.active_set();
        for t in trial.tasks_mut() {
            if t.name == name {
                t.priority = Some(priority);
            }
        }
        if !trial.priorities_are_unique() || !response_time_analysis(&trial).schedulable {
            return Err(AdmitError::NotSchedulable);
        }
        self.tcbs[idx].spec.priority = Some(priority);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn spec(name: &str, wcet: u64, period: u64) -> TaskSpec {
        TaskSpec::new(name, ms(wcet), ms(period))
    }

    fn img() -> TaskImage {
        TaskImage::typical_control_task()
    }

    #[test]
    fn admission_assigns_rm_priorities() {
        let mut k = Kernel::new("ctrl-a");
        let slow = k.admit(spec("slow", 10, 100), img(), None).unwrap();
        let fast = k.admit(spec("fast", 1, 10), img(), None).unwrap();
        let p_slow = k.tcb(slow).unwrap().spec.priority.unwrap();
        let p_fast = k.tcb(fast).unwrap().spec.priority.unwrap();
        assert!(p_fast < p_slow, "shorter period must outrank");
        assert!(k.verdict().schedulable);
    }

    #[test]
    fn admission_rejects_overload_and_leaves_state() {
        let mut k = Kernel::new("n");
        k.admit(spec("a", 6, 10), img(), None).unwrap();
        let before = k.active_set();
        let err = k.admit(spec("b", 6, 10), img(), None).unwrap_err();
        assert_eq!(err, AdmitError::NotSchedulable);
        assert_eq!(k.active_set(), before, "failed admission must be a no-op");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut k = Kernel::new("n");
        k.admit(spec("pid", 1, 10), img(), None).unwrap();
        assert!(matches!(
            k.admit(spec("pid", 1, 20), img(), None),
            Err(AdmitError::DuplicateName(_))
        ));
    }

    #[test]
    fn reserve_gate_applies() {
        let mut k = Kernel::new("n");
        k.reserves_mut().cpu_capacity = 0.3;
        let r = CpuReserve::new(ms(2), ms(10));
        assert!(k.admit(spec("a", 2, 10), img(), Some(r)).is_ok());
        let r2 = CpuReserve::new(ms(2), ms(10));
        let err = k.admit(spec("b", 2, 10), img(), Some(r2)).unwrap_err();
        assert!(matches!(err, AdmitError::Reserve(ReserveError::Cpu)));
    }

    #[test]
    fn suspend_frees_capacity_resume_regates() {
        let mut k = Kernel::new("n");
        let a = k.admit(spec("a", 6, 10), img(), None).unwrap();
        // b does not fit while a is active...
        assert!(k.admit(spec("b", 6, 10), img(), None).is_err());
        // ...but fits once a is suspended (the Dormant-replica pattern).
        k.suspend(a).unwrap();
        let _b = k.admit(spec("b", 6, 10), img(), None).unwrap();
        // Resuming a must now fail the gate and leave a suspended.
        assert_eq!(k.resume(a), Err(AdmitError::NotSchedulable));
        assert_eq!(k.tcb(a).unwrap().state, TaskState::Suspended);
    }

    #[test]
    fn remove_returns_migration_payload() {
        let mut k = Kernel::new("n");
        let id = k.admit(spec("mig", 1, 10), img(), None).unwrap();
        let tcb = k.remove(id).unwrap();
        assert_eq!(tcb.spec.name, "mig");
        assert_eq!(tcb.image.size_bytes(), 384);
        assert!(k.tcb(id).is_none());
        assert!(matches!(k.remove(id), Err(AdmitError::UnknownTask(_))));
    }

    #[test]
    fn manual_priority_gated() {
        let mut k = Kernel::new("n");
        let a = k.admit(spec("a", 1, 10), img(), None).unwrap();
        let b = k.admit(spec("b", 2, 20), img(), None).unwrap();
        // Swapping to give b the top priority is still schedulable here
        // (two steps: a transient duplicate would be rejected).
        k.set_priority(a, 2).unwrap();
        k.set_priority(b, 0).unwrap();
        assert!(k.verdict().schedulable);
        // Duplicate priority rejected.
        let err = k.set_priority(b, 2).unwrap_err();
        assert_eq!(err, AdmitError::NotSchedulable);
        assert_eq!(k.tcb(b).unwrap().spec.priority, Some(0));
    }

    #[test]
    fn empty_kernel_is_schedulable() {
        let k = Kernel::new("n");
        assert!(k.verdict().schedulable);
        assert_eq!(k.utilization(), 0.0);
    }

    #[test]
    fn resume_noop_when_active() {
        let mut k = Kernel::new("n");
        let a = k.admit(spec("a", 1, 10), img(), None).unwrap();
        assert!(k.resume(a).is_ok());
    }
}
