//! Priority assignment policies.
//!
//! nano-RK uses fixed priorities; the EVM's "priority assignment"
//! operation (§3.1.1 op 4) re-derives them when the task set changes.
//! Rate-monotonic is optimal for implicit deadlines, deadline-monotonic
//! for constrained deadlines, and Audsley's algorithm is optimal in
//! general (it searches priority orderings using RTA as the feasibility
//! oracle).

use crate::sched::analysis::response_time_analysis;
use crate::task::TaskSet;

/// Assigns rate-monotonic priorities (shorter period = higher priority).
/// Ties break by input order. Returns the same set, re-prioritized.
pub fn assign_rate_monotonic(set: &mut TaskSet) {
    let mut order: Vec<usize> = (0..set.len()).collect();
    order.sort_by_key(|&i| (set.tasks()[i].period, i));
    for (prio, &i) in order.iter().enumerate() {
        set.tasks_mut()[i].priority = Some(prio as u8);
    }
}

/// Assigns deadline-monotonic priorities (shorter relative deadline =
/// higher priority). Ties break by input order.
pub fn assign_deadline_monotonic(set: &mut TaskSet) {
    let mut order: Vec<usize> = (0..set.len()).collect();
    order.sort_by_key(|&i| (set.tasks()[i].deadline, i));
    for (prio, &i) in order.iter().enumerate() {
        set.tasks_mut()[i].priority = Some(prio as u8);
    }
}

/// Audsley's optimal priority assignment.
///
/// Greedily assigns the **lowest** priority level to any task that is
/// schedulable at that level (with all others above it), then recurses on
/// the rest. Returns `true` and leaves the set prioritized if a feasible
/// assignment exists; returns `false` (set left unmodified) otherwise.
pub fn audsley(set: &mut TaskSet) -> bool {
    let n = set.len();
    if n == 0 {
        return true;
    }
    if n > u8::MAX as usize {
        return false;
    }
    let original: Vec<Option<u8>> = set.tasks().iter().map(|t| t.priority).collect();

    // unassigned[i] = true while task i still needs a level.
    let mut unassigned = vec![true; n];
    // Assign levels from the bottom (n-1) upward.
    for level in (0..n).rev() {
        let mut placed = false;
        for i in 0..n {
            if !unassigned[i] {
                continue;
            }
            // Trial: i at `level`, all other unassigned tasks above it.
            let mut trial = set.clone();
            let mut next_hp = 0u8;
            #[allow(clippy::needless_range_loop)] // j indexes two slices in lockstep
            for j in 0..n {
                let p = if j == i {
                    level as u8
                } else if unassigned[j] {
                    let p = next_hp;
                    next_hp += 1;
                    p
                } else {
                    // Already fixed at a lower level in a previous round.
                    trial.tasks()[j].priority.expect("assigned earlier")
                };
                trial.tasks_mut()[j].priority = Some(p);
            }
            // Only task i's response time matters at this step (lower
            // levels are already proven, higher levels don't depend on i).
            let verdict = response_time_analysis(&trial);
            if verdict.response_times[i].is_some() {
                set.tasks_mut()[i].priority = Some(level as u8);
                unassigned[i] = false;
                placed = true;
                break;
            }
        }
        if !placed {
            // Infeasible: restore and report.
            for (t, p) in set.tasks_mut().iter_mut().zip(original) {
                t.priority = p;
            }
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSpec;
    use evm_sim::SimDuration;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn rm_orders_by_period() {
        let mut set: TaskSet = [
            TaskSpec::new("slow", ms(5), ms(100)),
            TaskSpec::new("fast", ms(1), ms(10)),
            TaskSpec::new("mid", ms(2), ms(50)),
        ]
        .into_iter()
        .collect();
        assign_rate_monotonic(&mut set);
        let prio = |name: &str| {
            set.tasks()
                .iter()
                .find(|t| t.name == name)
                .and_then(|t| t.priority)
                .unwrap()
        };
        assert!(prio("fast") < prio("mid"));
        assert!(prio("mid") < prio("slow"));
        assert!(set.priorities_are_unique());
    }

    #[test]
    fn dm_orders_by_deadline() {
        let mut set: TaskSet = [
            TaskSpec::new("a", ms(1), ms(100)).with_deadline(ms(10)),
            TaskSpec::new("b", ms(1), ms(10)),
        ]
        .into_iter()
        .collect();
        assign_deadline_monotonic(&mut set);
        let a = set.tasks().iter().find(|t| t.name == "a").unwrap();
        let b = set.tasks().iter().find(|t| t.name == "b").unwrap();
        assert!(a.priority < b.priority, "D=10 beats D=T=10? tie by order");
    }

    #[test]
    fn audsley_finds_assignment_rm_misses() {
        // Non-harmonic constrained-deadline set where DM/Audsley succeed.
        let mut set: TaskSet = [
            TaskSpec::new("x", ms(3), ms(12)).with_deadline(ms(5)),
            TaskSpec::new("y", ms(2), ms(10)),
            TaskSpec::new("z", ms(2), ms(20)),
        ]
        .into_iter()
        .collect();
        assert!(audsley(&mut set));
        assert!(set.priorities_are_unique());
        assert!(response_time_analysis(&set).schedulable);
    }

    #[test]
    fn audsley_rejects_infeasible_and_restores() {
        let mut set: TaskSet = [
            TaskSpec::new("a", ms(6), ms(10)).with_priority(42),
            TaskSpec::new("b", ms(6), ms(10)),
        ]
        .into_iter()
        .collect();
        assert!(!audsley(&mut set));
        // Original (partial) priorities restored.
        assert_eq!(set.tasks()[0].priority, Some(42));
        assert_eq!(set.tasks()[1].priority, None);
    }

    #[test]
    fn audsley_matches_rm_on_schedulable_sets() {
        let mut rm_set: TaskSet = [
            TaskSpec::new("a", ms(1), ms(4)),
            TaskSpec::new("b", ms(2), ms(8)),
            TaskSpec::new("c", ms(4), ms(16)),
        ]
        .into_iter()
        .collect();
        let mut aud_set = rm_set.clone();
        assign_rate_monotonic(&mut rm_set);
        assert!(audsley(&mut aud_set));
        assert!(response_time_analysis(&rm_set).schedulable);
        assert!(response_time_analysis(&aud_set).schedulable);
    }

    #[test]
    fn audsley_empty_set_trivially_feasible() {
        let mut set = TaskSet::new();
        assert!(audsley(&mut set));
    }
}
