//! Schedulability analysis for fixed-priority preemptive scheduling.
//!
//! Three tests of increasing precision, matching what an EVM node can
//! afford to run at different moments (experiment E9 compares them):
//!
//! * [`liu_layland_bound`] / [`utilization_test`] — the classic
//!   `U ≤ n(2^{1/n} − 1)` sufficient test (O(n), very cheap, pessimistic),
//! * [`hyperbolic_test`] — Bini's `Π(Uᵢ + 1) ≤ 2` sufficient test (O(n),
//!   strictly less pessimistic),
//! * [`response_time_analysis`] — exact for constrained-deadline FP tasks:
//!   fixed-point iteration on `Rᵢ = Cᵢ + Σ_{j∈hp(i)} ⌈Rᵢ/Tⱼ⌉ Cⱼ`.

use evm_sim::SimDuration;

use crate::task::TaskSet;

/// Result of a schedulability test over a task set.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// `true` if every task provably meets its deadline.
    pub schedulable: bool,
    /// The analysis that produced this verdict.
    pub method: &'static str,
    /// Worst-case response time per task (same order as the input set),
    /// where the method computes one. `None` entries mean the iteration
    /// diverged past the deadline.
    pub response_times: Vec<Option<SimDuration>>,
}

/// The Liu & Layland utilization bound for `n` tasks: `n(2^{1/n} − 1)`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn liu_layland_bound(n: usize) -> f64 {
    assert!(n > 0, "bound undefined for zero tasks");
    let n = n as f64;
    n * (2f64.powf(1.0 / n) - 1.0)
}

/// Sufficient utilization-bound test (rate-monotonic, implicit deadlines).
#[must_use]
pub fn utilization_test(set: &TaskSet) -> Verdict {
    let schedulable =
        !set.is_empty() && set.total_utilization() <= liu_layland_bound(set.len()) + 1e-12;
    Verdict {
        schedulable,
        method: "liu-layland",
        response_times: vec![None; set.len()],
    }
}

/// Bini's hyperbolic sufficient test: `Π(Uᵢ + 1) ≤ 2`.
#[must_use]
pub fn hyperbolic_test(set: &TaskSet) -> Verdict {
    let product: f64 = set.tasks().iter().map(|t| t.utilization() + 1.0).product();
    Verdict {
        schedulable: !set.is_empty() && product <= 2.0 + 1e-12,
        method: "hyperbolic",
        response_times: vec![None; set.len()],
    }
}

/// Exact response-time analysis for fixed-priority preemptive scheduling
/// with constrained deadlines (`D ≤ T`).
///
/// Requires unique priorities on every task; returns per-task worst-case
/// response times in input order.
///
/// # Panics
///
/// Panics if any task lacks a priority or priorities are not unique.
#[must_use]
pub fn response_time_analysis(set: &TaskSet) -> Verdict {
    assert!(
        set.priorities_are_unique(),
        "RTA requires unique priorities on all tasks"
    );
    let tasks = set.tasks();
    let mut response_times = Vec::with_capacity(tasks.len());
    let mut schedulable = true;

    for (i, task) in tasks.iter().enumerate() {
        let my_prio = task.priority.expect("checked above");
        // Higher-priority tasks (lower number).
        let hp: Vec<usize> = (0..tasks.len())
            .filter(|&j| j != i && tasks[j].priority.expect("checked") < my_prio)
            .collect();

        let c = task.wcet.as_micros();
        let d = task.deadline.as_micros();
        let mut r = c;
        let rt = loop {
            let interference: u64 = hp
                .iter()
                .map(|&j| {
                    let tj = tasks[j].period.as_micros();
                    let cj = tasks[j].wcet.as_micros();
                    r.div_ceil(tj) * cj
                })
                .sum();
            let next = c + interference;
            if next == r {
                break Some(SimDuration::from_micros(r));
            }
            if next > d {
                break None;
            }
            r = next;
        };
        if rt.is_none() {
            schedulable = false;
        }
        response_times.push(rt);
    }

    Verdict {
        schedulable: schedulable && !tasks.is_empty(),
        method: "response-time-analysis",
        response_times,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSpec;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    /// Classic textbook set (Liu & Layland schedulable at U ≈ 0.753).
    fn easy_set() -> TaskSet {
        [
            TaskSpec::new("a", ms(1), ms(4)).with_priority(0),
            TaskSpec::new("b", ms(2), ms(8)).with_priority(1),
            TaskSpec::new("c", ms(4), ms(16)).with_priority(2),
        ]
        .into_iter()
        .collect()
    }

    /// U = 1.0, RM-schedulable because periods are harmonic.
    fn harmonic_full() -> TaskSet {
        [
            TaskSpec::new("a", ms(2), ms(4)).with_priority(0),
            TaskSpec::new("b", ms(2), ms(8)).with_priority(1),
            TaskSpec::new("c", ms(4), ms(16)).with_priority(2),
        ]
        .into_iter()
        .collect()
    }

    fn overloaded() -> TaskSet {
        [
            TaskSpec::new("a", ms(3), ms(4)).with_priority(0),
            TaskSpec::new("b", ms(3), ms(8)).with_priority(1),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn liu_layland_values() {
        assert!((liu_layland_bound(1) - 1.0).abs() < 1e-12);
        assert!((liu_layland_bound(2) - 0.8284).abs() < 1e-4);
        // n -> infinity: ln 2.
        assert!((liu_layland_bound(10_000) - std::f64::consts::LN_2).abs() < 1e-4);
    }

    #[test]
    fn utilization_test_accepts_easy_rejects_harmonic() {
        assert!(utilization_test(&easy_set()).schedulable);
        // Harmonic set is schedulable but the LL bound can't see it.
        assert!(!utilization_test(&harmonic_full()).schedulable);
    }

    #[test]
    fn hyperbolic_dominates_liu_layland() {
        // Any LL-accepted set is hyperbolic-accepted.
        let set = easy_set();
        assert!(utilization_test(&set).schedulable);
        assert!(hyperbolic_test(&set).schedulable);
    }

    #[test]
    fn rta_exact_values_on_textbook_set() {
        let v = response_time_analysis(&easy_set());
        assert!(v.schedulable);
        // R_a = 1; R_b = 2 + 1*1 = 3; R_c = 4 + interference = 9? compute:
        // R_c: start 4 -> 4 + ceil(4/4)*1 + ceil(4/8)*2 = 4+1+2=7
        //      -> 7 + ceil(7/4)*1 + ceil(7/8)*2 = 4+2+2=8
        //      -> 8 + ceil(8/4)*1+ceil(8/8)*2 = 4+2+2=8  fixed point.
        assert_eq!(v.response_times[0], Some(ms(1)));
        assert_eq!(v.response_times[1], Some(ms(3)));
        assert_eq!(v.response_times[2], Some(ms(8)));
    }

    #[test]
    fn rta_accepts_harmonic_full_utilization() {
        let v = response_time_analysis(&harmonic_full());
        assert!(v.schedulable, "harmonic U=1.0 is RM-schedulable");
        assert_eq!(v.response_times[2], Some(ms(16)));
    }

    #[test]
    fn rta_rejects_overload() {
        let v = response_time_analysis(&overloaded());
        assert!(!v.schedulable);
        assert_eq!(v.response_times[0], Some(ms(3)));
        assert_eq!(v.response_times[1], None);
    }

    #[test]
    fn empty_set_is_never_schedulable() {
        // An empty verdict would be vacuous; the kernel treats it as a
        // no-op admission anyway.
        assert!(!utilization_test(&TaskSet::new()).schedulable);
    }

    #[test]
    #[should_panic(expected = "unique priorities")]
    fn rta_requires_priorities() {
        let set: TaskSet = [TaskSpec::new("a", ms(1), ms(4))].into_iter().collect();
        let _ = response_time_analysis(&set);
    }
}
