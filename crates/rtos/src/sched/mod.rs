//! Scheduling: analysis, priority assignment and execution simulation.

pub mod analysis;
pub mod executor;
pub mod priority;
