//! Preemptive fixed-priority execution simulator with budget enforcement.
//!
//! Simulates the nano-RK scheduler at job granularity: periodic releases,
//! priority preemption, and CPU-reserve enforcement (a job that exhausts
//! its budget is cut and counted, mirroring nano-RK's enforced reserves).
//! Used to validate the analytic tests ([`crate::sched::analysis`]) — for
//! synchronous release, simulated worst-case response times must equal the
//! RTA fixed point — and to drive the EVM's runtime accounting.

use std::collections::HashMap;

use evm_sim::{SimDuration, SimTime};

use crate::task::TaskSet;

/// One contiguous interval of a task executing on the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GanttSlice {
    /// Index of the task in the input set.
    pub task: usize,
    /// Start of the interval.
    pub start: SimTime,
    /// End of the interval.
    pub end: SimTime,
}

/// Outcome of one simulated run.
#[derive(Debug, Clone, Default)]
pub struct ExecutionLog {
    /// Completed-job response times per task index.
    pub response_times: HashMap<usize, Vec<SimDuration>>,
    /// `(task, release_time)` of every deadline miss.
    pub misses: Vec<(usize, SimTime)>,
    /// `(task, release_time)` of every budget-enforcement cut.
    pub throttles: Vec<(usize, SimTime)>,
    /// Execution timeline.
    pub gantt: Vec<GanttSlice>,
}

impl ExecutionLog {
    /// Worst observed response time of `task`, if it completed any job.
    #[must_use]
    pub fn worst_response(&self, task: usize) -> Option<SimDuration> {
        self.response_times.get(&task)?.iter().copied().max()
    }

    /// Number of completed jobs of `task`.
    #[must_use]
    pub fn completions(&self, task: usize) -> usize {
        self.response_times.get(&task).map_or(0, Vec::len)
    }

    /// Total busy time in the Gantt chart.
    #[must_use]
    pub fn busy_time(&self) -> SimDuration {
        self.gantt
            .iter()
            .fold(SimDuration::ZERO, |acc, g| acc + (g.end - g.start))
    }
}

#[derive(Debug, Clone)]
struct Job {
    task: usize,
    release: SimTime,
    deadline: SimTime,
    remaining: SimDuration,
    budget_left: SimDuration,
}

/// The simulator.
#[derive(Debug, Clone)]
pub struct Executor {
    horizon: SimTime,
}

impl Executor {
    /// Creates an executor that simulates `[0, horizon)`.
    #[must_use]
    pub fn new(horizon: SimTime) -> Self {
        Executor { horizon }
    }

    /// Runs the task set with each job consuming exactly its WCET and no
    /// budget enforcement.
    ///
    /// # Panics
    ///
    /// Panics if priorities are missing or duplicated.
    #[must_use]
    pub fn run(&self, set: &TaskSet) -> ExecutionLog {
        self.run_with(set, None, |task, _job| set.tasks()[task].wcet)
    }

    /// Runs with optional per-task budgets (per period; jobs exceeding the
    /// budget are cut) and a per-job execution-time function, which lets
    /// tests inject overruns.
    ///
    /// # Panics
    ///
    /// Panics if priorities are missing or duplicated.
    #[must_use]
    pub fn run_with(
        &self,
        set: &TaskSet,
        budgets: Option<&[SimDuration]>,
        exec_time: impl Fn(usize, u64) -> SimDuration,
    ) -> ExecutionLog {
        assert!(
            set.priorities_are_unique(),
            "executor requires unique priorities"
        );
        if let Some(b) = budgets {
            assert_eq!(b.len(), set.len(), "one budget per task");
        }
        let tasks = set.tasks();
        let mut log = ExecutionLog::default();
        let mut ready: Vec<Job> = Vec::new();
        let mut next_release: Vec<SimTime> =
            tasks.iter().map(|t| SimTime::ZERO + t.offset).collect();
        let mut job_counter: Vec<u64> = vec![0; tasks.len()];
        let mut t = SimTime::ZERO;

        loop {
            // Release everything due at or before t.
            for (i, task) in tasks.iter().enumerate() {
                while next_release[i] <= t && next_release[i] < self.horizon {
                    let rel = next_release[i];
                    let exec = exec_time(i, job_counter[i]);
                    ready.push(Job {
                        task: i,
                        release: rel,
                        deadline: rel + task.deadline,
                        remaining: exec,
                        budget_left: budgets.map_or(exec, |b| b[i]),
                    });
                    job_counter[i] += 1;
                    next_release[i] = rel + task.period;
                }
            }

            // Pick the highest-priority ready job (lowest priority value;
            // FIFO among same task).
            let current = ready
                .iter()
                .enumerate()
                .min_by_key(|(idx, j)| (tasks[j.task].priority.expect("checked"), j.release, *idx))
                .map(|(idx, _)| idx);

            let upcoming = next_release
                .iter()
                .copied()
                .filter(|&r| r < self.horizon)
                .min();

            let Some(cur_idx) = current else {
                // Idle: jump to the next release or finish.
                match upcoming {
                    Some(r) => {
                        t = r;
                        continue;
                    }
                    None => break,
                }
            };

            let job = &mut ready[cur_idx];
            let runnable = job.remaining.min(job.budget_left);
            let finish_at = t + runnable;
            let slice_end = match upcoming {
                Some(r) if r < finish_at => r,
                _ => finish_at,
            };
            let slice_end = slice_end.min(self.horizon);
            if slice_end > t {
                log.gantt.push(GanttSlice {
                    task: job.task,
                    start: t,
                    end: slice_end,
                });
                let ran = slice_end - t;
                job.remaining = job.remaining.saturating_sub(ran);
                job.budget_left = job.budget_left.saturating_sub(ran);
            }
            t = slice_end;

            if job.remaining.is_zero() {
                // Completed.
                let resp = t - job.release;
                if t > job.deadline {
                    log.misses.push((job.task, job.release));
                }
                log.response_times.entry(job.task).or_default().push(resp);
                ready.swap_remove(cur_idx);
            } else if job.budget_left.is_zero() {
                // Budget exhausted: nano-RK enforcement cuts the job.
                log.throttles.push((job.task, job.release));
                if t > job.deadline {
                    log.misses.push((job.task, job.release));
                }
                ready.swap_remove(cur_idx);
            }

            if t >= self.horizon {
                break;
            }
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::analysis::response_time_analysis;
    use crate::sched::priority::assign_rate_monotonic;
    use crate::task::TaskSpec;
    use evm_sim::SimRng;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn textbook() -> TaskSet {
        [
            TaskSpec::new("a", ms(1), ms(4)).with_priority(0),
            TaskSpec::new("b", ms(2), ms(8)).with_priority(1),
            TaskSpec::new("c", ms(4), ms(16)).with_priority(2),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn simulated_worst_response_matches_rta() {
        let set = textbook();
        let log = Executor::new(SimTime::from_millis(160)).run(&set);
        let rta = response_time_analysis(&set);
        for i in 0..set.len() {
            assert_eq!(
                log.worst_response(i),
                rta.response_times[i],
                "task {i} mismatch"
            );
        }
        assert!(log.misses.is_empty());
    }

    #[test]
    fn preemption_visible_in_gantt() {
        let set = textbook();
        let log = Executor::new(SimTime::from_millis(16)).run(&set);
        // Task c (lowest prio) must appear in more than one slice: it is
        // preempted by a's second release at t=4.
        let c_slices = log.gantt.iter().filter(|g| g.task == 2).count();
        assert!(c_slices >= 2, "expected preemption of task c");
    }

    #[test]
    fn utilization_matches_busy_fraction() {
        let set = textbook();
        let horizon = SimTime::from_millis(1600);
        let log = Executor::new(horizon).run(&set);
        let busy = log.busy_time().as_secs_f64() / horizon.as_secs_f64();
        assert!((busy - set.total_utilization()).abs() < 0.01, "busy {busy}");
    }

    #[test]
    fn overload_misses_deadlines() {
        let set: TaskSet = [
            TaskSpec::new("a", ms(3), ms(4)).with_priority(0),
            TaskSpec::new("b", ms(3), ms(8)).with_priority(1),
        ]
        .into_iter()
        .collect();
        let log = Executor::new(SimTime::from_millis(80)).run(&set);
        assert!(!log.misses.is_empty());
    }

    #[test]
    fn budget_enforcement_cuts_overruns_and_protects_others() {
        // Task a misbehaves (runs 3 ms instead of 1 ms) but its 1 ms budget
        // confines the damage; task b stays schedulable.
        let set: TaskSet = [
            TaskSpec::new("a", ms(1), ms(4)).with_priority(0),
            TaskSpec::new("b", ms(2), ms(8)).with_priority(1),
        ]
        .into_iter()
        .collect();
        let budgets = [ms(1), ms(2)];
        let log =
            Executor::new(SimTime::from_millis(80)).run_with(&set, Some(&budgets), |task, _| {
                if task == 0 {
                    ms(3)
                } else {
                    ms(2)
                }
            });
        assert!(!log.throttles.is_empty(), "overruns must be throttled");
        assert!(log.throttles.iter().all(|&(t, _)| t == 0));
        // b never misses thanks to enforcement.
        assert!(log.misses.iter().all(|&(t, _)| t == 0));
        assert!(log.completions(1) >= 9);
    }

    #[test]
    fn without_enforcement_overrun_harms_victim() {
        let set: TaskSet = [
            TaskSpec::new("rogue", ms(1), ms(4)).with_priority(0),
            TaskSpec::new("victim", ms(2), ms(8)).with_priority(1),
        ]
        .into_iter()
        .collect();
        let log = Executor::new(SimTime::from_millis(80)).run_with(&set, None, |task, _| {
            if task == 0 {
                ms(4) // full-period overrun
            } else {
                ms(2)
            }
        });
        assert!(
            log.misses.iter().any(|&(t, _)| t == 1) || log.completions(1) == 0,
            "victim should starve without enforcement"
        );
    }

    #[test]
    fn offsets_delay_first_release() {
        let set: TaskSet = [TaskSpec::new("a", ms(1), ms(10))
            .with_offset(ms(5))
            .with_priority(0)]
        .into_iter()
        .collect();
        let log = Executor::new(SimTime::from_millis(30)).run(&set);
        assert_eq!(log.gantt[0].start, SimTime::from_millis(5));
        assert_eq!(log.completions(0), 3);
    }

    /// Property: on random schedulable sets, the simulator never observes a
    /// response time exceeding the RTA bound, and the synchronous worst
    /// case equals it.
    #[test]
    fn prop_rta_is_an_upper_bound() {
        let mut rng = SimRng::seed_from(42);
        let mut checked = 0;
        while checked < 25 {
            let n = rng.index(4) + 2;
            let mut set = TaskSet::new();
            for i in 0..n {
                let period = ms(4 << rng.index(4));
                let wcet_us = 200 + rng.index((period.as_micros() / 4) as usize) as u64;
                set.push(TaskSpec::new(
                    format!("t{i}"),
                    SimDuration::from_micros(wcet_us),
                    period,
                ));
            }
            assign_rate_monotonic(&mut set);
            let rta = response_time_analysis(&set);
            if !rta.schedulable {
                continue;
            }
            checked += 1;
            let log = Executor::new(SimTime::from_millis(512)).run(&set);
            for i in 0..set.len() {
                let sim = log.worst_response(i).expect("job completed");
                let bound = rta.response_times[i].expect("schedulable");
                assert!(
                    sim <= bound,
                    "simulated {sim} exceeds RTA bound {bound} for task {i}"
                );
            }
        }
    }
}
