//! nano-RK-style real-time kernel model.
//!
//! nano-RK (Eswaran, Rowe & Rajkumar) is a fully preemptive fixed-priority
//! RTOS with first-class *resource reservations*: tasks declare CPU,
//! network and energy budgets, the kernel admits them only if the resulting
//! task set is schedulable, and enforces the budgets at runtime. The EVM
//! sits on top of exactly these services (paper §2.2, Fig. 3): every task
//! migration or activation is gated by an admission test on the target
//! node.
//!
//! This crate models those services:
//!
//! * [`task`] — task specifications and sets,
//! * [`tcb`] — task control blocks and the migratable task image,
//! * [`sched`] — schedulability analyses (utilization bounds, hyperbolic
//!   bound, exact response-time analysis), priority assignment (RM / DM /
//!   Audsley) and a preemptive fixed-priority execution simulator with
//!   budget enforcement,
//! * [`reserve`] — CPU / network / energy reservations,
//! * [`kernel`] — the per-node facade the EVM drives: admit, remove,
//!   re-prioritize, suspend/resume, with the schedulability gate built in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernel;
pub mod reserve;
pub mod sched;
pub mod task;
pub mod tcb;

pub use kernel::{AdmitError, Kernel};
pub use reserve::{CpuReserve, EnergyReserve, NetReserve, ReserveSet};
pub use sched::analysis::{hyperbolic_test, liu_layland_bound, response_time_analysis, Verdict};
pub use sched::executor::{ExecutionLog, Executor};
pub use sched::priority::{assign_deadline_monotonic, assign_rate_monotonic, audsley};
pub use task::{TaskId, TaskSet, TaskSpec};
pub use tcb::{TaskImage, TaskState, Tcb};
