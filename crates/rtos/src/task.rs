//! Task specifications and task sets.

use std::fmt;

use evm_sim::SimDuration;

/// Identifier of a task within a kernel or task set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A periodic real-time task: the classic `(C, T, D)` triple plus an
/// optional release offset and an explicit priority (lower number = higher
/// priority, nano-RK convention).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    /// Human-readable name, e.g. `"lts-level-pid"`.
    pub name: String,
    /// Worst-case execution time `C`.
    pub wcet: SimDuration,
    /// Period `T`.
    pub period: SimDuration,
    /// Relative deadline `D` (defaults to the period).
    pub deadline: SimDuration,
    /// First release offset.
    pub offset: SimDuration,
    /// Fixed priority; `None` until assigned. Lower value runs first.
    pub priority: Option<u8>,
}

impl TaskSpec {
    /// Creates a task with implicit deadline (`D = T`) and zero offset.
    ///
    /// # Panics
    ///
    /// Panics if `wcet` is zero, `period` is zero, or `wcet > period`.
    #[must_use]
    pub fn new(name: impl Into<String>, wcet: SimDuration, period: SimDuration) -> Self {
        assert!(!wcet.is_zero(), "wcet must be positive");
        assert!(!period.is_zero(), "period must be positive");
        assert!(wcet <= period, "wcet must not exceed period");
        TaskSpec {
            name: name.into(),
            wcet,
            period,
            deadline: period,
            offset: SimDuration::ZERO,
            priority: None,
        }
    }

    /// Sets a constrained deadline.
    ///
    /// # Panics
    ///
    /// Panics if `deadline < wcet` or `deadline > period`.
    #[must_use]
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        assert!(deadline >= self.wcet, "deadline below wcet");
        assert!(deadline <= self.period, "deadline beyond period");
        self.deadline = deadline;
        self
    }

    /// Sets the release offset.
    #[must_use]
    pub fn with_offset(mut self, offset: SimDuration) -> Self {
        self.offset = offset;
        self
    }

    /// Sets an explicit priority (lower value = higher priority).
    #[must_use]
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = Some(priority);
        self
    }

    /// CPU utilization `C/T`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.wcet.as_secs_f64() / self.period.as_secs_f64()
    }
}

/// An ordered collection of tasks forming one node's workload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskSet {
    tasks: Vec<TaskSpec>,
}

impl TaskSet {
    /// Creates an empty task set.
    #[must_use]
    pub fn new() -> Self {
        TaskSet::default()
    }

    /// Adds a task.
    pub fn push(&mut self, task: TaskSpec) {
        self.tasks.push(task);
    }

    /// The tasks, in insertion order.
    #[must_use]
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// Mutable access for priority assignment.
    pub fn tasks_mut(&mut self) -> &mut [TaskSpec] {
        &mut self.tasks
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total CPU utilization.
    #[must_use]
    pub fn total_utilization(&self) -> f64 {
        self.tasks.iter().map(TaskSpec::utilization).sum()
    }

    /// Tasks sorted by priority (highest first). Unprioritized tasks sort
    /// last.
    #[must_use]
    pub fn by_priority(&self) -> Vec<&TaskSpec> {
        let mut v: Vec<&TaskSpec> = self.tasks.iter().collect();
        v.sort_by_key(|t| t.priority.unwrap_or(u8::MAX));
        v
    }

    /// `true` if every task has a priority and no two share one.
    #[must_use]
    pub fn priorities_are_unique(&self) -> bool {
        let mut ps: Vec<u8> = match self.tasks.iter().map(|t| t.priority).collect() {
            Some(v) => v,
            None => return false,
        };
        ps.sort_unstable();
        ps.windows(2).all(|w| w[0] != w[1])
    }
}

impl FromIterator<TaskSpec> for TaskSet {
    fn from_iter<I: IntoIterator<Item = TaskSpec>>(iter: I) -> Self {
        TaskSet {
            tasks: iter.into_iter().collect(),
        }
    }
}

impl Extend<TaskSpec> for TaskSet {
    fn extend<I: IntoIterator<Item = TaskSpec>>(&mut self, iter: I) {
        self.tasks.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn spec_builder_and_utilization() {
        let t = TaskSpec::new("pid", ms(2), ms(10))
            .with_deadline(ms(8))
            .with_offset(ms(1))
            .with_priority(3);
        assert_eq!(t.deadline, ms(8));
        assert_eq!(t.offset, ms(1));
        assert_eq!(t.priority, Some(3));
        assert!((t.utilization() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "wcet must not exceed period")]
    fn overlong_wcet_panics() {
        let _ = TaskSpec::new("bad", ms(20), ms(10));
    }

    #[test]
    #[should_panic(expected = "deadline below wcet")]
    fn tiny_deadline_panics() {
        let _ = TaskSpec::new("bad", ms(5), ms(10)).with_deadline(ms(2));
    }

    #[test]
    fn set_utilization_sums() {
        let set: TaskSet = [
            TaskSpec::new("a", ms(1), ms(10)),
            TaskSpec::new("b", ms(2), ms(10)),
        ]
        .into_iter()
        .collect();
        assert!((set.total_utilization() - 0.3).abs() < 1e-12);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn priority_ordering_and_uniqueness() {
        let mut set = TaskSet::new();
        set.push(TaskSpec::new("low", ms(1), ms(100)).with_priority(7));
        set.push(TaskSpec::new("high", ms(1), ms(10)).with_priority(1));
        let order = set.by_priority();
        assert_eq!(order[0].name, "high");
        assert!(set.priorities_are_unique());
        set.push(TaskSpec::new("dup", ms(1), ms(10)).with_priority(1));
        assert!(!set.priorities_are_unique());
        set.push(TaskSpec::new("none", ms(1), ms(10)));
        assert!(!set.priorities_are_unique());
    }
}
