//! Seeded regression grid for the failover path.
//!
//! The paper's claim (Fig. 6b, §3.1.2): once the deviation detector
//! confirms a fault, the head arbitrates and commits the reconfiguration
//! within two RT-Link cycles — and as long as one viable backup survives,
//! the response is `Reconfig` (promotion), never the `FailSafe` fallback.
//! The single-trajectory tests pin this for one seed; this grid pins it
//! for 16 seeds per cell across topology × loss cells.

use evm::core::runtime::Scenario;
use evm::plant::ActuatorFault;
use evm::prelude::*;
use evm::sweep::{available_threads, run_cells, CellStats, StarShape, SweepGrid, SweepReport};

#[test]
fn every_cell_with_a_surviving_backup_reconfigs_within_two_cycles() {
    let template = Scenario::builder()
        .duration(SimDuration::from_secs(60))
        .fault_at(SimTime::from_secs(15), ActuatorFault::paper_fault())
        .reconfig_epoch(SimDuration::ZERO)
        .build();
    let two_cycles = template.rtlink.cycle_duration().as_secs_f64() * 2.0;
    let cells = SweepGrid::new(template)
        // Every shape keeps ≥ 1 backup after the primary faults.
        .over_stars(&[StarShape::fig5(), StarShape::with_controllers(3)])
        .over_loss(&[0.0, 0.1, 0.2])
        .seeds_per_cell(16)
        .base_seed(2024)
        .expand();
    assert_eq!(cells.len(), 96);
    let results = run_cells(&cells, available_threads());

    for (cell, result) in cells.iter().zip(&results) {
        let ctx = format!(
            "cell {} ({}, seed {})",
            cell.id,
            cell.config.key(),
            cell.config.seed
        );
        let stats = CellStats::from_run(cell, result);
        // Reconfig, never FailSafe: a backup survived in every cell.
        assert!(!stats.fail_safe, "{ctx}: fell back to fail-safe");
        assert!(
            result.event_time("head commits failover").is_some(),
            "{ctx}: no reconfig committed"
        );
        // The promoted replica actually went Active (the commit was
        // delivered over the lossy control plane).
        assert!(
            result.event_time("-> Active").is_some(),
            "{ctx}: promotion never applied"
        );
        let detect = stats.detect_s.expect("fault confirmed");
        assert!(detect >= 15.0, "{ctx}: detected before the fault");
        let failover = stats.failover_s.expect("commit follows detection");
        assert!(
            (0.0..=two_cycles).contains(&failover),
            "{ctx}: detect->commit took {failover:.3} s (bound {two_cycles} s)"
        );
    }

    // The aggregate view agrees: all replicates detected, none fail-safe.
    let report = SweepReport::build(&cells, &results);
    for row in &report.rows {
        assert_eq!(row.detected_runs, row.runs, "row {}", row.key);
        assert_eq!(row.fail_safe_runs, 0, "row {}", row.key);
        assert!(
            row.failover_p99_s <= two_cycles,
            "row {}: p99 {:.3}",
            row.key,
            row.failover_p99_s
        );
    }
}

/// The complementary claim: with *no* surviving backup (single controller,
/// head present), arbitration finds no candidate and the head engages the
/// fail-safe response instead of promoting.
#[test]
fn no_backup_means_failsafe_not_reconfig() {
    let template = Scenario::builder()
        .controllers(1)
        .duration(SimDuration::from_secs(60))
        .fault_at(SimTime::from_secs(15), ActuatorFault::paper_fault())
        .reconfig_epoch(SimDuration::ZERO)
        .build();
    let cells = SweepGrid::new(template).seeds_per_cell(4).expand();
    let results = run_cells(&cells, available_threads());
    for (cell, result) in cells.iter().zip(&results) {
        let stats = CellStats::from_run(cell, result);
        assert!(stats.fail_safe, "cell {}: no fail-safe", cell.id);
        assert!(
            result.event_time("head commits failover").is_none(),
            "cell {}: promoted a nonexistent backup",
            cell.id
        );
    }
}
