//! Cross-crate integration: the epoch-based reconfiguration plane.
//!
//! Pins the tentpole claims of the runtime reconfiguration refactor:
//!
//! 1. **Epoch atomicity** — reconfigurations commit only at RT-Link cycle
//!    boundaries (a mid-cycle request waits for the boundary), so no
//!    cycle ever mixes two epochs' timetables.
//! 2. **No-op identity** — a forced reconfiguration when nothing died
//!    recomputes the identical program: plant series, QoS counters and
//!    energy accounting are byte-identical to the static run.
//! 3. **Dead-forwarder recovery** — under `ReroutePolicy::Heartbeat`, a
//!    crashed relay is detected by heartbeat silence, routes re-run over
//!    the surviving topology (through the backup chain) and end-to-end
//!    delivery resumes within a bounded number of cycles.
//! 4. **Head re-election** — a crashed head is replaced by a surviving
//!    backup (deterministic election), and the rehydrated control plane
//!    completes a subsequent deviation failover.

use evm::core::runtime::{Engine, ReroutePolicy, Scenario, ScenarioBuilder};
use evm::netsim::NodeId;
use evm::plant::ActuatorFault;
use evm::prelude::*;

/// The 2-hop line with one redundant relay chain. Node ids: GW=0, S1=1,
/// Ctrl-A=2, Ctrl-B=3, A1=4, Head=5, R1=6, RB1=7.
fn line_with_backup() -> ScenarioBuilder {
    ScenarioBuilder::star()
        .line(2)
        .sensors(1)
        .controllers(2)
        .actuators(1)
        .head(true)
        .backup_relays(1)
}

const R1: NodeId = NodeId(6);

/// A forced reconfiguration with nothing down is a *no-op*: the
/// recomputed epoch reproduces the setup-time program exactly, so the
/// swapped run is indistinguishable from the static run in every
/// physical observable — series, actuations, latencies, energy — and
/// differs only in its trace, which records the epoch commit.
#[test]
fn noop_reconfiguration_is_byte_identical_to_the_static_run() {
    let base = line_with_backup().duration(SimDuration::from_secs(120));
    let plain = Engine::new(base.clone().build()).run();
    // Mid-cycle request: 40.1 s is inside a 250 ms cycle.
    let forced = Engine::new(base.force_reconfig_at(SimTime::from_secs_f64(40.1)).build()).run();

    assert_eq!(forced.epochs, 1, "the forced epoch committed");
    assert_eq!(plain.epochs, 0);
    assert_eq!(forced.series, plain.series, "plant series identical");
    assert_eq!(forced.actuations, plain.actuations);
    assert_eq!(forced.deadline_misses, plain.deadline_misses);
    assert_eq!(forced.e2e_latencies, plain.e2e_latencies);
    assert_eq!(forced.node_energy, plain.node_energy);
    assert_eq!(forced.vc_stats, plain.vc_stats);
    assert_eq!(forced.reroute_latency, None, "nothing was marked down");
}

/// Epoch swaps never tear a cycle: the commit of a mid-cycle request
/// lands exactly on the next cycle boundary.
#[test]
fn epoch_commits_land_on_cycle_boundaries() {
    let s = line_with_backup()
        .force_reconfig_at(SimTime::from_secs_f64(40.1))
        .duration(SimDuration::from_secs(60))
        .build();
    let cycle = s.rtlink.cycle_duration();
    let r = Engine::new(s).run();
    let staged = r.event_time("epoch 1 staged").expect("staged");
    let committed = r.event_time("epoch 1 committed").expect("committed");
    assert_eq!(
        committed.floor_to(cycle),
        committed,
        "commit at {committed} is not a cycle boundary"
    );
    assert!(committed > staged, "staging precedes the commit");
    assert!(
        committed.saturating_since(staged) <= cycle,
        "the swap waits at most one cycle"
    );
}

/// The heartbeat policy itself is physically neutral while nothing dies:
/// keepalive frames change radio occupancy, never the plant.
#[test]
fn heartbeat_policy_without_failures_leaves_the_physics_unchanged() {
    let base = line_with_backup().duration(SimDuration::from_secs(120));
    let statics = Engine::new(base.clone().build()).run();
    let heartbeat = Engine::new(base.reroute(ReroutePolicy::Heartbeat).build()).run();
    assert_eq!(heartbeat.series, statics.series);
    assert_eq!(heartbeat.actuations, statics.actuations);
    assert_eq!(heartbeat.epochs, 0, "nothing died: no reconfiguration");
}

/// The acceptance chain for trigger (1): kill the only primary-path
/// relay; heartbeat silence marks it down, the epoch recomputes over the
/// surviving topology and the loop resumes through the backup chain —
/// within a bounded number of cycles — then re-regulates to setpoint.
#[test]
fn dead_forwarder_is_rerouted_around_and_the_loop_recovers() {
    let crash_at = SimTime::from_secs(30);
    let s = line_with_backup()
        .reroute(ReroutePolicy::Heartbeat)
        .crash_node_at(R1, crash_at)
        .duration(SimDuration::from_secs(300))
        .build();
    assert_eq!(s.topology.nodes[6].label, "R1");
    assert_eq!(s.topology.nodes[7].label, "RB1");
    let cycle = s.rtlink.cycle_duration();
    let heartbeat_cycles = s.heartbeat_cycles;
    let r = Engine::new(s).run();

    // Detection, recompute, commit — all traced.
    let down = r.event_time("R1 missed heartbeats").expect("detection");
    let committed = r.event_time("epoch 1 committed").expect("commit");
    assert_eq!(r.epochs, 1);
    // Bounded reroute latency: silence threshold plus detection jitter
    // (the silence check runs once per cycle) plus the boundary swap.
    let bound = cycle * (heartbeat_cycles + 3);
    assert!(
        down.saturating_since(crash_at) <= bound,
        "detected {} after the crash",
        down.saturating_since(crash_at)
    );
    assert!(committed.saturating_since(down) <= cycle * 2);
    let reroute = r.reroute_latency.expect("delivery resumed");
    assert!(
        reroute <= cycle * 3,
        "first delivery {reroute} after detection"
    );

    // The loop actually recovers: deliveries resume (well beyond the
    // starved count) and the PV re-regulates to setpoint.
    assert!(
        r.actuations > 1000,
        "only {} actuations: loop did not resume",
        r.actuations
    );
    let err = r.series("Err.LC-LTS").last_value().unwrap();
    assert!(err.abs() < 0.2, "steady-state error {err} after reroute");
    // And the recovery is a reroute, not a spurious failover.
    assert!(r.event_time("-> Active").is_none(), "no promotion");
    assert!(r.event_time("fail-safe").is_none());
}

/// The same crash under the static default starves forever — the paired
/// twin isolating the policy as the only variable.
#[test]
fn dead_forwarder_under_static_policy_starves_forever() {
    let s = line_with_backup()
        .crash_node_at(R1, SimTime::from_secs(30))
        .duration(SimDuration::from_secs(300))
        .build();
    let r = Engine::new(s).run();
    assert_eq!(r.epochs, 0);
    assert_eq!(r.actuations, 120, "4 Hz until the crash, then silence");
}

/// Trigger (2): kill the head. Heartbeat silence re-elects the lowest-id
/// surviving backup, rehydrates the control plane on it, and a
/// *subsequent* deviation fault on the primary still completes the full
/// detect → arbitrate → commit failover through the new head.
#[test]
fn head_crash_reelects_and_subsequent_deviation_failover_completes() {
    // Three replicas so a backup remains after one becomes head:
    // GW=0, S1=1, Ctrl-A=2, Ctrl-B=3, Ctrl-C=4, A1=5, Head=6, R1=7, RB1=8.
    let s = ScenarioBuilder::star()
        .line(2)
        .sensors(1)
        .controllers(3)
        .actuators(1)
        .head(true)
        .backup_relays(1)
        .reroute(ReroutePolicy::Heartbeat)
        .crash_node_at(NodeId(6), SimTime::from_secs(30))
        .fault_at(SimTime::from_secs(120), ActuatorFault::paper_fault())
        .reconfig_epoch(SimDuration::ZERO)
        .duration(SimDuration::from_secs(300))
        .build();
    assert_eq!(s.topology.nodes[6].label, "Head");
    let r = Engine::new(s).run();

    // Re-election: the dead head is detected and Ctrl-B (lowest-id
    // surviving backup) takes over the control plane.
    let down = r.event_time("Head missed heartbeats").expect("detection");
    assert!(down > SimTime::from_secs(30) && down < SimTime::from_secs(40));
    let reelected = r
        .event_time("head Head lost; Ctrl-B re-elected head")
        .expect("re-election");
    assert!(reelected < SimTime::from_secs(40));
    assert!(
        r.epochs >= 1,
        "control-plane flows re-routed to the new head"
    );

    // The rehydrated control plane still runs the paper's failover: the
    // stuck primary is detected by deviation and Ctrl-C promotes.
    let detected = r.event_time("confirmed deviation").expect("detection");
    assert!(detected > SimTime::from_secs(120));
    let promoted = r.event_time("Ctrl-C -> Active").expect("failover");
    assert!(
        promoted > SimTime::from_secs(120) && promoted < SimTime::from_secs(125),
        "failover at {promoted}"
    );
    assert!(r.event_time("fail-safe").is_none());
    // The promoted replica re-regulates the plant.
    let pv = r.series("LTS.LiquidPct").last_value().unwrap();
    assert!((pv - 50.0).abs() < 0.5, "recovered PV {pv}");
}

/// Killing the head under the static default leaves the control plane
/// dead: the later primary fault is detected by the backups but no head
/// exists to arbitrate, so no failover ever commits.
#[test]
fn head_crash_under_static_policy_kills_the_control_plane() {
    let s = ScenarioBuilder::star()
        .line(2)
        .sensors(1)
        .controllers(3)
        .actuators(1)
        .head(true)
        .backup_relays(1)
        .crash_node_at(NodeId(6), SimTime::from_secs(30))
        .fault_at(SimTime::from_secs(120), ActuatorFault::paper_fault())
        .reconfig_epoch(SimDuration::ZERO)
        .duration(SimDuration::from_secs(300))
        .build();
    let r = Engine::new(s).run();
    assert_eq!(r.epochs, 0);
    assert!(r.event_time("re-elected head").is_none());
    assert!(r.event_time("-> Active").is_none(), "no one can promote");
}

/// The no-op swap preserves in-flight forwarder state via job migration,
/// and repeated forced reconfigurations stay no-ops: epoch counts add up
/// while the physics never notices.
#[test]
fn repeated_noop_swaps_compose() {
    let base = line_with_backup().duration(SimDuration::from_secs(90));
    let plain = Engine::new(base.clone().build()).run();
    let swapped = Engine::new(
        base.force_reconfig_at(SimTime::from_secs(20))
            .force_reconfig_at(SimTime::from_secs(40))
            .force_reconfig_at(SimTime::from_secs_f64(60.07))
            .build(),
    )
    .run();
    assert_eq!(swapped.epochs, 3);
    assert_eq!(swapped.series, plain.series);
    assert_eq!(swapped.actuations, plain.actuations);
    assert_eq!(swapped.vc_stats, plain.vc_stats);
}

/// A backup that died *before* ever gaining forwarding jobs (so it never
/// transmitted and never stamped the liveness ledger) must still be
/// detectable once an epoch presses it into service: the commit-time
/// stamp starts its silence clock, the dead stand-in is marked down a
/// heartbeat-timeout later, and the next recompute falls through to the
/// second backup chain.
#[test]
fn dead_standby_forwarder_is_detected_after_gaining_jobs() {
    // Two backup chains: GW=0, S1=1, Ctrl-A=2, Ctrl-B=3, A1=4, Head=5,
    // R1=6, RB1=7, RB2.1=8. RB1 dies idle; R1 dies in service.
    let s = line_with_backup()
        .backup_relays(2)
        .reroute(ReroutePolicy::Heartbeat)
        .crash_node_at(NodeId(7), SimTime::from_secs(5))
        .crash_node_at(R1, SimTime::from_secs(30))
        .duration(SimDuration::from_secs(300))
        .build();
    assert_eq!(s.topology.nodes[7].label, "RB1");
    assert_eq!(s.topology.nodes[8].label, "RB2.1");
    let r = Engine::new(s).run();

    // Epoch 1 reroutes onto the (already dead) RB1; the commit-time
    // stamp makes its silence observable, epoch 2 reaches RB2.1.
    let r1_down = r.event_time("R1 missed heartbeats").expect("R1 detected");
    let rb1_down = r
        .event_time("RB1 missed heartbeats")
        .expect("idle-dead stand-in detected once in service");
    assert!(rb1_down > r1_down);
    assert_eq!(r.epochs, 2);
    assert!(r.event_time("epoch 2 committed").is_some());
    // The loop ultimately recovers over the second chain.
    assert!(r.actuations > 900, "{} actuations", r.actuations);
    let err = r.series("Err.LC-LTS").last_value().unwrap();
    assert!(err.abs() < 0.2, "steady-state error {err}");
}

/// Forwarding is a *capability*, and so is being watched: a role node
/// lending a hop (the 3×3 grid's actuator forwards the HIL downlink and
/// the PV publish) is detected by the same heartbeat silence as a
/// dedicated relay, and the recompute survives the dead node being a
/// flow endpoint — its own flows are pruned/retargeted while the
/// through-traffic re-routes over the lattice.
#[test]
fn role_node_forwarders_are_watched_and_routed_around() {
    // Ids: GW=0, S1=1, Ctrl-A=2, A1=3, Head=4, R1..R4=5..8. A1 sits on
    // the downlink and publish chains (routes prefer the low-id role
    // pod), so killing it severs the loop AND removes its endpoints.
    let build = |policy: ReroutePolicy| {
        ScenarioBuilder::star()
            .grid(3, 3)
            .sensors(1)
            .controllers(1)
            .actuators(1)
            .head(true)
            .slots_per_cycle(33)
            .reroute(policy)
            .crash_node_at(NodeId(3), SimTime::from_secs(30))
            .duration(SimDuration::from_secs(120))
            .build()
    };
    let s = build(ReroutePolicy::Heartbeat);
    assert_eq!(s.topology.nodes[3].label, "A1");
    let r = Engine::new(s).run();

    // Detected like any forwarder, and the epoch commits — the pruning
    // keeps the survivor flow set routable (no "reroute failed").
    let down = r.event_time("A1 missed heartbeats").expect("detection");
    assert!(down > SimTime::from_secs(30) && down < SimTime::from_secs(40));
    assert_eq!(r.epochs, 1);
    assert!(r.event_time("reroute failed").is_none());
    assert!(r.event_time("epoch 1 committed").is_some());
    // The actuation endpoint itself died, so delivery stays frozen at
    // the crash count — the reroute heals the *through* traffic, not
    // the dead node's own duties.
    assert_eq!(
        r.actuations,
        Engine::new(build(ReroutePolicy::Static)).run().actuations
    );
    assert!(r.event_time("fail-safe").is_none());
}

/// Scenario-level invariants of the new knobs.
#[test]
fn reroute_defaults_keep_static_behavior() {
    let s = Scenario::baseline();
    assert_eq!(s.reroute, ReroutePolicy::Static);
    assert!(s.force_reconfig.is_empty());
    assert_eq!(ReroutePolicy::Static.label(), "static");
    assert_eq!(ReroutePolicy::Heartbeat.label(), "heartbeat");
}
