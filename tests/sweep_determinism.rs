//! Cross-thread reproducibility of the batch sweep runner.
//!
//! The engine is deterministic per seed and cell seeds are derived purely
//! from the grid definition, so the *entire sweep pipeline* — expansion,
//! execution, aggregation, rendering — must produce identical output no
//! matter how many worker threads carry the cells. This suite locks that
//! contract down: a 1-thread and an N-thread run of the same 3×3×4-cell
//! grid must agree on every per-cell `RunResult` and render byte-identical
//! reports.

use evm::core::runtime::Scenario;
use evm::plant::ActuatorFault;
use evm::prelude::*;
use evm::sweep::{available_threads, run_cells, SweepGrid, SweepReport};

/// The 3 (loss) × 3 (detection) × 4 (seeds) grid of failover runs.
fn grid() -> SweepGrid {
    let template = Scenario::builder()
        .duration(SimDuration::from_secs(45))
        .fault_at(SimTime::from_secs(12), ActuatorFault::paper_fault())
        .reconfig_epoch(SimDuration::ZERO)
        .build();
    SweepGrid::new(template)
        .over_loss(&[0.0, 0.1, 0.2])
        .over_detection(&[(5.0, 3), (3.0, 4), (8.0, 2)])
        .seeds_per_cell(4)
        .base_seed(77)
}

#[test]
fn one_thread_and_n_threads_produce_byte_identical_sweeps() {
    let cells = grid().expand();
    assert_eq!(cells.len(), 36);
    // num_cpus, but at least 4 so the multi-worker path is exercised even
    // on single-core CI runners.
    let n = available_threads().max(4);

    let serial = run_cells(&cells, 1);
    let parallel = run_cells(&cells, n);

    // Every per-cell RunResult identical: series samples, traces, latency
    // lists, counters, energy accounting.
    assert_eq!(serial.len(), parallel.len());
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(a, b, "cell {i} differs between 1 and {n} threads");
    }

    // And the rendered reports match byte for byte.
    let report_1 = SweepReport::build(&cells, &serial);
    let report_n = SweepReport::build(&cells, &parallel);
    assert_eq!(report_1.to_csv(), report_n.to_csv());
    assert_eq!(report_1.cells_csv(), report_n.cells_csv());
    assert_eq!(report_1.vcs_csv(), report_n.vcs_csv());
    assert_eq!(report_1.to_markdown(), report_n.to_markdown());
}

#[test]
fn expansion_is_reproducible_and_execution_order_free() {
    let a = grid().expand();
    let b = grid().expand();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.config, y.config);
        assert_eq!(x.scenario.seed, y.scenario.seed);
    }
    // Seeds are a pure function of (base, index): running a *slice* of the
    // grid gives the same per-cell results as the full run — nothing leaks
    // between cells.
    let full = run_cells(&a, 2);
    let slice = run_cells(&a[6..9], 2);
    for (r_full, r_slice) in full[6..9].iter().zip(&slice) {
        assert_eq!(r_full, r_slice);
    }
}

#[test]
fn base_seed_changes_every_cell() {
    let a = grid().expand();
    let b = grid().base_seed(78).expand();
    for (x, y) in a.iter().zip(&b) {
        assert_ne!(x.scenario.seed, y.scenario.seed);
        assert_eq!(x.config.key(), y.config.key());
    }
}
