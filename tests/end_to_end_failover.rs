//! Cross-crate integration: the full Fig. 6b pipeline.
//!
//! Exercises every layer at once: plant thermodynamics → ModBus gateway →
//! RT-Link slots → EVM capsules on controller nodes → health assessment →
//! arbitration → mode changes → plant recovery.

use evm::core::runtime::{Engine, Scenario};
use evm::prelude::*;

#[test]
fn fig6b_reproduces_paper_timeline_and_shape() {
    let result = Engine::new(Scenario::fig6b()).run();

    // Timeline: T1 = 300, T2 = 600 (+ one control-plane slot), T3 = 800.
    let t1 = result.event_time("inject").expect("fault injected");
    let t2 = result
        .event_time("Ctrl-B -> Active")
        .expect("backup activated");
    let t3 = result
        .event_time("Ctrl-A -> Dormant")
        .expect("primary dormant");
    assert_eq!(t1, SimTime::from_secs(300));
    assert!(t2 >= SimTime::from_secs(600) && t2 < SimTime::from_secs(601));
    assert!(t3 >= SimTime::from_secs(800) && t3 < SimTime::from_secs(801));

    // Series shape: stable → collapse → recovery.
    let level = result.series("LTS.LiquidPct");
    let pre = level.window(SimTime::from_secs(60), SimTime::from_secs(300));
    assert!(pre.stats().unwrap().min > 40.0, "stable before the fault");
    let valve = result.series("LTSLiqValve.OpeningPct");
    let fault_valve = valve
        .value_at(SimTime::from_secs(450))
        .expect("valve sampled");
    assert!(
        (fault_valve - 75.0).abs() < 1.0,
        "the paper's stuck-at-75% is visible at the valve: {fault_valve}"
    );
    let collapse = level.window(SimTime::from_secs(500), SimTime::from_secs(600));
    assert!(collapse.stats().unwrap().max < 20.0, "level collapsed");
    let recovery = level.window(SimTime::from_secs(950), SimTime::from_secs(1000));
    assert!(
        recovery.stats().unwrap().mean > 20.0,
        "level recovering after failover"
    );

    // Mode series for the two controllers traverse the Fig. 6 sequence.
    let a = result.series("Mode.Ctrl-A");
    let b = result.series("Mode.Ctrl-B");
    assert_eq!(a.value_at(SimTime::from_secs(100)), Some(0.0), "A Active");
    assert_eq!(b.value_at(SimTime::from_secs(100)), Some(1.0), "B Backup");
    assert_eq!(a.value_at(SimTime::from_secs(700)), Some(1.0), "A Backup");
    assert_eq!(b.value_at(SimTime::from_secs(700)), Some(0.0), "B Active");
    assert_eq!(a.value_at(SimTime::from_secs(900)), Some(2.0), "A Dormant");
}

#[test]
fn no_fault_means_no_failover() {
    let mut scenario = Scenario::baseline();
    scenario.duration = SimDuration::from_secs(400);
    let result = Engine::new(scenario).run();
    assert!(result.event_time("confirmed deviation").is_none());
    assert!(result.event_time("Ctrl-B -> Active").is_none());
    let level = result.series("LTS.LiquidPct");
    assert!((level.last_value().unwrap() - 50.0).abs() < 3.0);
}

#[test]
fn runs_are_deterministic_per_seed_and_differ_across_seeds() {
    let a = Engine::new(Scenario::fig6b()).run();
    let b = Engine::new(Scenario::fig6b()).run();
    assert_eq!(a.trace.render(), b.trace.render());
    assert_eq!(a.e2e_latencies, b.e2e_latencies);

    // With lossy links, the seed decides which frames drop: different
    // seeds must produce observably different runs, same seed identical.
    let lossy = |seed: u64| {
        use evm::plant::ActuatorFault;
        let s = Scenario::builder()
            .seed(seed)
            .fault_at(SimTime::from_secs(100), ActuatorFault::paper_fault())
            .reconfig_epoch(SimDuration::ZERO)
            .extra_loss(0.25)
            .duration(SimDuration::from_secs(250))
            .build();
        Engine::new(s).run()
    };
    let c1 = lossy(1);
    let c1_again = lossy(1);
    let c2 = lossy(2);
    assert_eq!(c1.trace.render(), c1_again.trace.render());
    assert!(
        c1.e2e_latencies.len() != c2.e2e_latencies.len() || c1.trace.render() != c2.trace.render(),
        "different seeds must diverge under loss"
    );
}
