//! Cross-crate integration: the `ScenarioBuilder` topology DSL.
//!
//! The refactored runtime's core claim: the same engine runs topologies
//! the paper's testbed never had — here a wide star with an extra
//! controller replica converges through *two* failovers, the degenerate
//! three-node loop still regulates, and `Scenario::fig5()` stays
//! deterministic under the new engine.

use evm::core::runtime::{Engine, Scenario, ScenarioBuilder};
use evm::plant::ActuatorFault;
use evm::prelude::*;

/// A 2-sensor / 3-controller / 1-head star: after the primary faults, the
/// head promotes Ctrl-B; after Ctrl-B faults too, the third replica takes
/// over instead of falling back to fail-safe — capacity the Fig. 5
/// testbed does not have.
#[test]
fn wide_star_survives_two_controller_faults() {
    let scenario = ScenarioBuilder::star()
        .sensors(2)
        .controllers(3)
        .head(true)
        .fault_at(SimTime::from_secs(100), ActuatorFault::paper_fault())
        .backup_fault_at(SimTime::from_secs(250), ActuatorFault::StuckOutput(90.0))
        .reconfig_epoch(SimDuration::ZERO)
        .duration(SimDuration::from_secs(500))
        .build();
    let result = Engine::new(scenario).run();

    let first = result
        .event_time("Ctrl-B -> Active")
        .expect("first failover");
    assert!(first < SimTime::from_secs(105), "first failover at {first}");
    let second = result
        .event_time("Ctrl-C -> Active")
        .expect("second failover");
    assert!(
        second > SimTime::from_secs(250) && second < SimTime::from_secs(260),
        "second failover at {second}"
    );
    // Three replicas means no fail-safe was needed.
    assert!(result.event_time("fail-safe").is_none());
    // And the loop converges back to the setpoint under Ctrl-C.
    let level = result.series("LTS.LiquidPct");
    let late = level.window(SimTime::from_secs(400), SimTime::from_secs(500));
    let mean = late.stats().unwrap().mean;
    assert!((mean - 50.0).abs() < 15.0, "level recovering, mean {mean}");

    // All three controller mode series exist and show the handoffs.
    assert_eq!(
        result
            .series("Mode.Ctrl-A")
            .value_at(SimTime::from_secs(400)),
        Some(2.0),
        "A dormant" // demoted 200 s after the first failover
    );
    assert_eq!(
        result
            .series("Mode.Ctrl-C")
            .value_at(SimTime::from_secs(400)),
        Some(0.0),
        "C active"
    );
}

/// The degenerate three-node Virtual Component (gateway + sensor +
/// controller, actuation through the gateway, no head) still closes the
/// loop and holds the level.
#[test]
fn minimal_three_node_loop_regulates() {
    let scenario = ScenarioBuilder::minimal()
        .duration(SimDuration::from_secs(300))
        .build();
    assert_eq!(scenario.topology.nodes.len(), 3);
    let result = Engine::new(scenario).run();
    assert!(result.actuations > 500, "actuations {}", result.actuations);
    assert!(result.deadline_hit_ratio() > 0.99);
    let level = result.series("LTS.LiquidPct");
    let last = level.last_value().unwrap();
    assert!((last - 50.0).abs() < 5.0, "level {last}");
    // No failover machinery exists — and none fired.
    assert!(result.event_time("head").is_none());
}

/// `Scenario::fig5()` under the new engine: the same seed produces the
/// same `RunResult`, and a different seed diverges under loss.
#[test]
fn fig5_is_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut s = Scenario::fig5();
        s.seed = seed;
        s.extra_loss = 0.2;
        s.fault = Some((SimTime::from_secs(100), ActuatorFault::paper_fault()));
        s.reconfig_epoch = SimDuration::ZERO;
        s.duration = SimDuration::from_secs(250);
        Engine::new(s).run()
    };
    let a = run(9);
    let b = run(9);
    assert_eq!(a.trace.render(), b.trace.render());
    assert_eq!(a.e2e_latencies, b.e2e_latencies);
    assert_eq!(a.deadline_misses, b.deadline_misses);
    assert_eq!(a.actuations, b.actuations);
    assert_eq!(
        a.series("LTS.LiquidPct").samples(),
        b.series("LTS.LiquidPct").samples()
    );
    for (label, energy) in &a.node_energy {
        assert_eq!(energy, &b.node_energy[label], "{label} energy differs");
    }
    let c = run(10);
    assert!(
        a.trace.render() != c.trace.render() || a.e2e_latencies != c.e2e_latencies,
        "different seeds must diverge under loss"
    );
}

/// The DSL's extra sensors appear as monitoring flows without disturbing
/// the control pipeline.
#[test]
fn extra_sensors_schedule_and_run() {
    let scenario = ScenarioBuilder::star()
        .sensors(4)
        .controllers(2)
        .head(true)
        .duration(SimDuration::from_secs(120))
        .build();
    assert_eq!(scenario.topology.nodes.len(), 9);
    let result = Engine::new(scenario).run();
    assert!(result.deadline_hit_ratio() > 0.99);
    let level = result.series("LTS.LiquidPct");
    assert!((level.last_value().unwrap() - 50.0).abs() < 5.0);
}
