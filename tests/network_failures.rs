//! Cross-crate integration: failure injection across the stack.

use evm::core::runtime::{Engine, Scenario};
use evm::plant::ActuatorFault;
use evm::prelude::*;

#[test]
fn crash_of_primary_is_survived() {
    let scenario = Scenario::builder()
        .crash_primary_at(SimTime::from_secs(120))
        .reconfig_epoch(SimDuration::ZERO)
        .duration(SimDuration::from_secs(400))
        .build();
    let result = Engine::new(scenario).run();
    let promoted = result.event_time("Ctrl-B -> Active").expect("failover");
    // Heartbeat timeout (16 cycles = 4 s) + decision + one command slot.
    assert!(
        promoted < SimTime::from_secs(130),
        "crash failover took until {promoted}"
    );
    let level = result.series("LTS.LiquidPct");
    assert!(
        (level.last_value().unwrap() - 50.0).abs() < 10.0,
        "loop regulated after crash"
    );
}

#[test]
fn lossy_links_delay_but_do_not_fake_detection() {
    let run = |loss: f64| {
        let scenario = Scenario::builder()
            .seed(77)
            .fault_at(SimTime::from_secs(100), ActuatorFault::paper_fault())
            .reconfig_epoch(SimDuration::ZERO)
            .extra_loss(loss)
            .duration(SimDuration::from_secs(300))
            .build();
        Engine::new(scenario).run()
    };
    let clean = run(0.0);
    let lossy = run(0.3);
    let t_clean = clean
        .event_time("confirmed deviation")
        .expect("clean detects");
    let t_lossy = lossy
        .event_time("confirmed deviation")
        .expect("lossy detects");
    assert!(t_clean >= SimTime::from_secs(100), "no false positive");
    assert!(t_lossy >= t_clean, "loss can only delay detection");
    assert!(
        lossy.event_time("Ctrl-B -> Active").is_some(),
        "failover still completes at 30% loss"
    );
}

#[test]
fn sensor_crash_stalls_the_loop_without_false_failover() {
    // Losing the sensor is not a controller fault: both replicas starve
    // of PV together, outputs freeze together, no deviation appears, and
    // the actuator simply holds its last command (sample-and-hold).
    use evm::core::runtime::nodes;
    let scenario = Scenario::builder()
        .crash_node_at(nodes::S1, SimTime::from_secs(100))
        .reconfig_epoch(SimDuration::ZERO)
        .duration(SimDuration::from_secs(300))
        .build();
    let result = Engine::new(scenario).run();
    assert!(result.event_time("confirmed deviation").is_none());
    assert!(result.event_time("Ctrl-B -> Active").is_none());
    // Valve held at its last commanded position.
    let valve = result.series("LTSLiqValve.OpeningPct");
    let held = valve.value_at(SimTime::from_secs(250)).unwrap();
    assert!((held - 11.48).abs() < 2.0, "valve drifted to {held}");
}

#[test]
fn erratic_fault_is_detected_like_stuck_fault() {
    let scenario = Scenario::builder()
        .fault_at(
            SimTime::from_secs(100),
            ActuatorFault::Erratic { lo: 40.0, hi: 95.0 },
        )
        .reconfig_epoch(SimDuration::ZERO)
        .duration(SimDuration::from_secs(300))
        .build();
    let result = Engine::new(scenario).run();
    assert!(result.event_time("confirmed deviation").is_some());
    assert!(result.event_time("Ctrl-B -> Active").is_some());
}

#[test]
fn drift_fault_detected_once_threshold_crossed() {
    // A slow drift (0.2 %/s) crosses the 5 % detection threshold ~25 s
    // after onset; detection must happen after that, not before.
    let scenario = Scenario::builder()
        .fault_at(
            SimTime::from_secs(100),
            ActuatorFault::Drift { rate_per_s: 0.2 },
        )
        .reconfig_epoch(SimDuration::ZERO)
        .duration(SimDuration::from_secs(400))
        .build();
    let result = Engine::new(scenario).run();
    let detected = result.event_time("confirmed deviation").expect("detected");
    assert!(
        detected >= SimTime::from_secs(124),
        "drift cannot be detected before crossing the threshold: {detected}"
    );
    assert!(
        detected < SimTime::from_secs(140),
        "but soon after: {detected}"
    );
}
