//! Cross-crate integration: RT-Link scheduling properties on realistic
//! deployments, with property-based coverage.

use evm::mac::rtlink::{Flow, RtLinkConfig, SlotSchedule};
use evm::mac::{DutyCycledMac, RtLink, Workload};
use evm::netsim::{Battery, Channel, ChannelConfig, NodeId, NodeKind, Topology};
use evm::sim::SimRng;
use proptest::prelude::*;

fn star(n: usize, seed: u64) -> Topology {
    let mut ch = Channel::new(ChannelConfig::default(), SimRng::seed_from(seed));
    Topology::star(
        n,
        15.0,
        &[NodeKind::Sensor, NodeKind::Controller, NodeKind::Actuator],
        &mut ch,
    )
}

#[test]
fn paper_testbed_flows_fit_one_cycle() {
    let topo = star(6, 1);
    let cfg = RtLinkConfig::default();
    // The Fig. 5 pipeline: sensor -> controllers -> actuator -> gateway.
    let flows = vec![
        Flow::new(NodeId(0), NodeId(1)),
        Flow::new(NodeId(1), NodeId(2)).with_listeners(vec![NodeId(3)]).after(0),
        Flow::new(NodeId(2), NodeId(4)).with_listeners(vec![NodeId(3)]).after(1),
        Flow::new(NodeId(3), NodeId(4)).after(2),
        Flow::new(NodeId(4), NodeId(0)).after(3),
    ];
    let sched = SlotSchedule::for_flows(&cfg, &topo, &flows).expect("fits");
    assert!(sched.is_interference_free(&topo));
    // Whole pipeline within one cycle.
    let last = sched.owned_slots(NodeId(4))[0];
    assert!(last < cfg.slots_per_cycle);
}

proptest! {
    /// Any chain of flows over a fully-connected star schedules without
    /// interference, and precedence is respected.
    #[test]
    fn prop_chains_schedule_interference_free(len in 2usize..8, seed in 0u64..50) {
        let topo = star(8, seed);
        let cfg = RtLinkConfig::default();
        let mut flows = Vec::new();
        for i in 0..len {
            let src = NodeId((i % 8 + 1) as u16);
            let dst = NodeId(((i + 1) % 8 + 1) as u16);
            prop_assume!(src != dst);
            let f = Flow::new(src, dst);
            flows.push(if i > 0 { f.after(i - 1) } else { f });
        }
        let sched = SlotSchedule::for_flows(&cfg, &topo, &flows).expect("schedules");
        prop_assert!(sched.is_interference_free(&topo));
        // Precedence: each flow's slot strictly increases along the chain.
        let mut last_slot = 0usize;
        for (i, f) in flows.iter().enumerate() {
            let slots = sched.owned_slots(f.src);
            let slot = *slots.iter().find(|&&s| s > last_slot || i == 0).expect("placed");
            prop_assert!(i == 0 || slot > last_slot);
            last_slot = slot;
        }
    }

    /// RT-Link's modeled current draw is monotone in offered load.
    #[test]
    fn prop_rtlink_current_monotone_in_rate(r1 in 0.5f64..30.0, r2 in 0.5f64..30.0) {
        prop_assume!(r1 < r2);
        let rt = RtLink::default();
        let i1 = rt.average_current_ma(0.05, &Workload::periodic(r1, 32, 6));
        let i2 = rt.average_current_ma(0.05, &Workload::periodic(r2, 32, 6));
        prop_assert!(i1 <= i2 + 1e-12);
    }

    /// Lifetime is the exact inverse of average current.
    #[test]
    fn prop_lifetime_inverts_current(rate in 0.5f64..60.0, duty in 0.01f64..0.9) {
        let rt = RtLink::default();
        let wl = Workload::periodic(rate, 24, 6);
        let battery = Battery::two_aa();
        let m = rt.metrics(duty, &wl, &battery);
        let expect = battery.lifetime_years_at(m.avg_current_ma);
        prop_assert!((m.lifetime_years - expect).abs() < 1e-9);
    }
}
