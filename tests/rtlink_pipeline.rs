//! Cross-crate integration: RT-Link scheduling properties on realistic
//! deployments, with property-based coverage.

use evm::mac::rtlink::{Flow, RtLinkConfig, SlotSchedule};
use evm::mac::{DutyCycledMac, RtLink, Workload};
use evm::netsim::{Battery, Channel, ChannelConfig, NodeId, NodeKind, Topology};
use evm::sim::SimRng;

fn star(n: usize, seed: u64) -> Topology {
    let mut ch = Channel::new(ChannelConfig::default(), SimRng::seed_from(seed));
    Topology::star(
        n,
        15.0,
        &[NodeKind::Sensor, NodeKind::Controller, NodeKind::Actuator],
        &mut ch,
    )
}

#[test]
fn paper_testbed_flows_fit_one_cycle() {
    let topo = star(6, 1);
    let cfg = RtLinkConfig::default();
    // The Fig. 5 pipeline: sensor -> controllers -> actuator -> gateway.
    let flows = vec![
        Flow::new(NodeId(0), NodeId(1)),
        Flow::new(NodeId(1), NodeId(2))
            .with_listeners(vec![NodeId(3)])
            .after(0),
        Flow::new(NodeId(2), NodeId(4))
            .with_listeners(vec![NodeId(3)])
            .after(1),
        Flow::new(NodeId(3), NodeId(4)).after(2),
        Flow::new(NodeId(4), NodeId(0)).after(3),
    ];
    let sched = SlotSchedule::for_flows(&cfg, &topo, &flows).expect("fits");
    assert!(sched.is_interference_free(&topo));
    // Whole pipeline within one cycle.
    let last = sched.owned_slots(NodeId(4))[0];
    assert!(last < cfg.slots_per_cycle);
}

/// Any chain of flows over a fully-connected star schedules without
/// interference, and precedence is respected.
#[test]
fn chains_schedule_interference_free() {
    for seed in 0..50u64 {
        for len in 2usize..8 {
            let topo = star(8, seed);
            let cfg = RtLinkConfig::default();
            let mut flows = Vec::new();
            for i in 0..len {
                let src = NodeId((i % 8 + 1) as u16);
                let dst = NodeId(((i + 1) % 8 + 1) as u16);
                if src == dst {
                    continue;
                }
                let f = Flow::new(src, dst);
                flows.push(if i > 0 { f.after(i - 1) } else { f });
            }
            let sched = SlotSchedule::for_flows(&cfg, &topo, &flows).expect("schedules");
            assert!(sched.is_interference_free(&topo));
            // Precedence: each flow's slot strictly increases along the chain.
            let mut last_slot = 0usize;
            for (i, f) in flows.iter().enumerate() {
                let slots = sched.owned_slots(f.src);
                let slot = *slots
                    .iter()
                    .find(|&&s| s > last_slot || i == 0)
                    .expect("placed");
                assert!(i == 0 || slot > last_slot);
                last_slot = slot;
            }
        }
    }
}

/// RT-Link's modeled current draw is monotone in offered load.
#[test]
fn rtlink_current_monotone_in_rate() {
    let mut rng = SimRng::seed_from(0x0AD);
    let rt = RtLink::default();
    for _ in 0..256 {
        let a = rng.range(0.5, 30.0);
        let b = rng.range(0.5, 30.0);
        let (r1, r2) = if a < b { (a, b) } else { (b, a) };
        let i1 = rt.average_current_ma(0.05, &Workload::periodic(r1, 32, 6));
        let i2 = rt.average_current_ma(0.05, &Workload::periodic(r2, 32, 6));
        assert!(
            i1 <= i2 + 1e-12,
            "current not monotone: {i1} at {r1}/s vs {i2} at {r2}/s"
        );
    }
}

/// Lifetime is the exact inverse of average current.
#[test]
fn lifetime_inverts_current() {
    let mut rng = SimRng::seed_from(0x11FE);
    let rt = RtLink::default();
    let battery = Battery::two_aa();
    for _ in 0..256 {
        let rate = rng.range(0.5, 60.0);
        let duty = rng.range(0.01, 0.9);
        let wl = Workload::periodic(rate, 24, 6);
        let m = rt.metrics(duty, &wl, &battery);
        let expect = battery.lifetime_years_at(m.avg_current_ma);
        assert!((m.lifetime_years - expect).abs() < 1e-9);
    }
}
