//! Cross-crate integration: several Virtual Components on one shared
//! RT-Link cycle.
//!
//! The multi-VC runtime's core claims: (1) an n-VC star closes every
//! hosted loop within the shared cycle, (2) a primary crash in one VC
//! fails over without perturbing any other VC's regulation — pinned down
//! as *byte identity* of the unaffected VC's per-cycle error trace — and
//! (3) the whole sweep pipeline stays thread-count-independent when a
//! grid carries a `vcs` axis.

use evm::core::runtime::{Engine, Scenario, ScenarioBuilder};
use evm::prelude::*;
use evm::sweep::{available_threads, run_cells, SweepGrid, SweepReport};

/// A 2-VC star (1 sensor, 2 controllers, 1 actuator, head per VC) with an
/// optional VC-0 primary crash.
fn two_vc_scenario(crash_vc0_at: Option<SimTime>) -> Scenario {
    let mut b = ScenarioBuilder::star()
        .vcs(2)
        .sensors(1)
        .controllers(2)
        .actuators(1)
        .head(true)
        .reconfig_epoch(SimDuration::ZERO)
        .duration(SimDuration::from_secs(300));
    if let Some(at) = crash_vc0_at {
        b = b.crash_vc_primary_at(0, at);
    }
    b.build()
}

#[test]
fn two_vc_star_regulates_both_loops_in_one_cycle() {
    let scenario = two_vc_scenario(None);
    assert_eq!(scenario.n_vcs(), 2);
    // Shared gateway + 2 × (S1, Ctrl-A, Ctrl-B, A1, Head).
    assert_eq!(scenario.topology.nodes.len(), 11);
    let engine = Engine::new(scenario);
    // Both pipelines fit inside the default 25-slot cycle.
    assert!(engine.schedule().max_slot().unwrap() < 25);
    assert!(engine.schedule().is_interference_free(engine.topology()));
    assert_eq!(engine.components().len(), 2);
    assert_eq!(engine.components()[0].name(), "LC-LTS");
    assert_eq!(engine.components()[1].name(), "LC-InletSep");

    let r = engine.run();
    assert_eq!(r.meta.vcs, 2);
    assert_eq!(r.vc_stats.len(), 2);
    for (vc, stats) in r.vc_stats.iter().enumerate() {
        assert!(
            stats.actuations > 500,
            "VC {vc} actuations {}",
            stats.actuations
        );
        assert!(
            stats.deadline_hit_ratio() > 0.99,
            "VC {vc} hit ratio {}",
            stats.deadline_hit_ratio()
        );
    }
    // Both loops hold their setpoints.
    let lts = r.series("LTS.LiquidPct").last_value().unwrap();
    assert!((lts - 50.0).abs() < 5.0, "LTS level {lts}");
    let sep = r.series("InletSep.LevelPct").last_value().unwrap();
    assert!((sep - 50.0).abs() < 5.0, "InletSep level {sep}");
    // The global tallies are the per-VC sums.
    assert_eq!(
        r.actuations,
        r.vc_stats.iter().map(|s| s.actuations).sum::<usize>()
    );
}

/// The isolation contract: a VC-0 primary crash fails over via VC 0's
/// heartbeat machinery while VC 1's per-cycle error trace (and PV series)
/// stays *byte-identical* to the same scenario without the crash.
#[test]
fn vc0_primary_crash_does_not_perturb_vc1() {
    let crashed = Engine::new(two_vc_scenario(Some(SimTime::from_secs(100)))).run();
    let baseline = Engine::new(two_vc_scenario(None)).run();

    // VC 0 failed over: heartbeat timeout, then Ctrl-B promoted shortly
    // after the crash (16-cycle silence window at 250 ms/cycle = 4 s).
    let promoted = crashed.event_time("Ctrl-B -> Active").expect("failover");
    assert!(
        promoted > SimTime::from_secs(100) && promoted < SimTime::from_secs(110),
        "failover at {promoted}"
    );
    assert!(crashed.event_time("heartbeat timeout").is_some());
    assert!(baseline.event_time("Ctrl-B -> Active").is_none());
    // VC 1's machinery never fired.
    assert!(crashed.event_time("V1.Ctrl-B -> Active").is_none());

    // VC 1's per-cycle error trace and sampled PV are byte-identical.
    assert_eq!(
        crashed.series("Err.LC-InletSep").samples(),
        baseline.series("Err.LC-InletSep").samples(),
        "VC 1's per-cycle error trace must not see VC 0's crash"
    );
    assert_eq!(
        crashed.series("InletSep.LevelPct").samples(),
        baseline.series("InletSep.LevelPct").samples()
    );
    // And VC 1 kept regulating through VC 0's outage.
    let sep = crashed.series("InletSep.LevelPct").last_value().unwrap();
    assert!((sep - 50.0).abs() < 5.0, "InletSep level {sep}");
}

/// Crashing VC 1's primary (per-VC fault targeting) fails over with VC
/// 1's labels, leaving VC 0 untouched.
#[test]
fn crash_targets_the_named_vc() {
    let mut b = ScenarioBuilder::star()
        .vcs(2)
        .sensors(1)
        .controllers(2)
        .actuators(1)
        .head(true)
        .reconfig_epoch(SimDuration::ZERO)
        .duration(SimDuration::from_secs(200));
    b = b.crash_vc_primary_at(1, SimTime::from_secs(60));
    let r = Engine::new(b.build()).run();
    let promoted = r.event_time("V1.Ctrl-B -> Active").expect("VC 1 failover");
    assert!(promoted > SimTime::from_secs(60) && promoted < SimTime::from_secs(70));
    // VC 0's backup never promoted (its trace entry would lack the V1.
    // prefix and the head commit names VC 0's controller ids).
    let vc0_promotes = r
        .trace
        .render()
        .lines()
        .filter(|l| l.contains("Ctrl-B -> Active") && !l.contains("V1."))
        .count();
    assert_eq!(vc0_promotes, 0, "VC 0 must not fail over");
}

/// A scripted crash naming a VC the deployment does not host is a
/// configuration error caught up front — at `build()` for the builder
/// path and at engine construction for hand-assembled scenarios — not a
/// mid-run index panic that would abort a whole sweep.
#[test]
#[should_panic(expected = "targets VC 7")]
fn crash_on_unhosted_vc_is_rejected_by_the_builder() {
    let _ = ScenarioBuilder::star()
        .vcs(2)
        .crash_vc_primary_at(7, SimTime::from_secs(10))
        .build();
}

#[test]
#[should_panic(expected = "targets VC 3")]
fn crash_on_unhosted_vc_is_rejected_at_engine_construction() {
    let mut s = ScenarioBuilder::star().vcs(2).build();
    s.primary_crashes.push((3, SimTime::from_secs(10)));
    let _ = Engine::new(s);
}

/// Monitoring sensors past the 11-entry register table get unique but
/// plant-unmapped registers; the engine surfaces them in the trace
/// instead of letting the flows go silently dark.
#[test]
fn unmapped_monitor_registers_are_traced() {
    let mut s = ScenarioBuilder::star()
        .sensors(13) // monitors 1..=12; the 12th reads synthetic 30013
        .duration(SimDuration::from_secs(1))
        .build();
    // 30 flows need a longer cycle than the default 25 slots.
    s.rtlink.slots_per_cycle = 40;
    let r = Engine::new(s).run();
    assert!(r.event_time("reads unmapped register 30013").is_some());
}

/// `tests/sweep_determinism.rs`-style cross-thread byte identity on a
/// grid with a `vcs` axis: expansion, execution, aggregation and
/// rendering (including the per-VC rows) are identical at 1 and N
/// threads.
#[test]
fn vcs_axis_sweep_is_byte_identical_across_thread_counts() {
    let template = ScenarioBuilder::star()
        .sensors(1)
        .controllers(2)
        .actuators(1)
        .head(true)
        .crash_vc_primary_at(0, SimTime::from_secs(10))
        .reconfig_epoch(SimDuration::ZERO)
        .duration(SimDuration::from_secs(40))
        .build();
    let grid = SweepGrid::new(template)
        .over_vcs(&[1, 2, 3])
        .over_loss(&[0.0, 0.1])
        .seeds_per_cell(2)
        .base_seed(91);
    let cells = grid.expand();
    assert_eq!(cells.len(), 12);
    // The vcs axis materializes the hosting manifest per cell.
    assert_eq!(cells[0].scenario.n_vcs(), 1);
    assert_eq!(cells[4].config.vcs, 2);
    assert_eq!(cells[4].scenario.n_vcs(), 2);

    let n = available_threads().max(4);
    let serial = run_cells(&cells, 1);
    let parallel = run_cells(&cells, n);
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(a, b, "cell {i} differs between 1 and {n} threads");
    }
    let report_1 = SweepReport::build(&cells, &serial);
    let report_n = SweepReport::build(&cells, &parallel);
    assert_eq!(report_1.to_csv(), report_n.to_csv());
    assert_eq!(report_1.cells_csv(), report_n.cells_csv());
    assert_eq!(report_1.vcs_csv(), report_n.vcs_csv());
    assert_eq!(report_1.to_markdown(), report_n.to_markdown());
    // Per-VC rows: one row per (config point, VC).
    let rows_per_key: usize = report_1.vc_rows.iter().filter(|r| r.vc == 0).count();
    assert_eq!(rows_per_key, report_1.rows.len());
    assert!(report_1.vc_rows.iter().any(|r| r.vc == 2));
}
