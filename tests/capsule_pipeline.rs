//! Cross-crate integration: the mobile-code pipeline.
//!
//! compile → package → attest → admit → execute, across `evm-plant`
//! (loop definition), `evm-core` (capsule machinery) and `evm-rtos`
//! (admission gate).

use evm::core::attest::{attest_capsule, capsule_digest, AttestationKey};
use evm::core::bytecode::{
    compile_control_law, control_law_gas_budget, Capability, Capsule, CapsuleId, ControlLawSpec,
    NullEnv, Vm,
};
use evm::core::membership::{admit_node, NodeProfile};
use evm::core::VirtualComponent;
use evm::netsim::{NodeId, NodeKind};
use evm::plant::{lts_level_loop, LocalController};
use evm::rtos::Kernel;
use evm::sim::SimDuration;

const KEY: AttestationKey = AttestationKey(0x2009_0601);

fn focus_capsule() -> Capsule {
    let law = ControlLawSpec::from_loop(&lts_level_loop());
    let program = compile_control_law(&law);
    let gas = control_law_gas_budget(&program);
    Capsule::new(
        CapsuleId(1),
        1,
        program,
        gas,
        vec![
            Capability::SensorPort(0),
            Capability::ActuatorPort(0),
            Capability::ControllerRole,
        ],
    )
}

#[test]
fn full_pipeline_compile_attest_admit_execute() {
    let capsule = focus_capsule();
    let digest = capsule_digest(&capsule, KEY);

    // Attestation gate.
    assert!(attest_capsule(&capsule, digest, KEY).passed());

    // Admission onto a controller node.
    let mut vc = VirtualComponent::new("lts-loop");
    let mut kernel = Kernel::new("ctrl-b");
    let profile = NodeProfile {
        node: NodeId(3),
        kind: NodeKind::Controller,
        sensor_ports: vec![0],
        actuator_ports: vec![0],
        controller_capable: true,
    };
    admit_node(
        &mut vc,
        &mut kernel,
        &profile,
        &capsule,
        digest,
        KEY,
        SimDuration::from_millis(250),
    )
    .expect("admission passes");
    assert!(kernel.verdict().schedulable);

    // Execution matches the wired controller on a step trajectory.
    let mut vm = Vm::new(capsule.gas_budget);
    let mut native = LocalController::new(lts_level_loop());
    for k in 0..1000 {
        let pv = 50.0 + if k > 500 { -8.0 } else { 0.0 };
        let mut env = NullEnv {
            sensor_value: pv,
            ..NullEnv::default()
        };
        let vm_out = vm.run(&capsule.program, &mut env).expect("runs");
        let native_out = native.compute(pv, 0.25);
        assert!((vm_out - native_out).abs() < 1e-9, "step {k}");
    }
}

#[test]
fn tampered_capsule_is_rejected_end_to_end() {
    let capsule = focus_capsule();
    let digest = capsule_digest(&capsule, KEY);
    let tampered = capsule.corrupted(10, 2).expect("still decodes");

    let mut vc = VirtualComponent::new("lts-loop");
    let mut kernel = Kernel::new("mallory");
    let profile = NodeProfile {
        node: NodeId(9),
        kind: NodeKind::Controller,
        sensor_ports: vec![0],
        actuator_ports: vec![0],
        controller_capable: true,
    };
    let err = admit_node(
        &mut vc,
        &mut kernel,
        &profile,
        &tampered,
        digest,
        KEY,
        SimDuration::from_millis(250),
    )
    .expect_err("tampered code must not be admitted");
    assert!(matches!(err, evm::core::EvmError::AttestationFailed { .. }));
    assert!(vc.is_empty());
    assert!(kernel.tcbs().is_empty());
}

#[test]
fn admission_gate_enforces_capacity_across_capsules() {
    // A node can host only so many 250 ms control capsules; the gate must
    // start refusing exactly when RTA says so, and the kernel state must
    // be unchanged on refusal.
    let mut kernel = Kernel::new("ctrl-x");
    kernel
        .admit(
            evm::rtos::TaskSpec::new(
                "hog",
                SimDuration::from_millis(200),
                SimDuration::from_millis(250),
            ),
            evm::rtos::TaskImage::typical_control_task(),
            None,
        )
        .expect("hog fits alone");

    let mut vc = VirtualComponent::new("vc");
    let mut capsule = focus_capsule();
    capsule.gas_budget = 60_000; // 60 ms at 1 us/instruction
    let digest = capsule_digest(&capsule, KEY);
    let profile = NodeProfile {
        node: NodeId(4),
        kind: NodeKind::Controller,
        sensor_ports: vec![0],
        actuator_ports: vec![0],
        controller_capable: true,
    };
    let err = admit_node(
        &mut vc,
        &mut kernel,
        &profile,
        &capsule,
        digest,
        KEY,
        SimDuration::from_millis(250),
    )
    .expect_err("over capacity");
    assert!(matches!(err, evm::core::EvmError::AdmissionRefused { .. }));
    assert_eq!(kernel.tcbs().len(), 1);
}
