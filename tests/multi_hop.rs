//! Cross-crate integration: multi-hop topologies (line / grid /
//! clustered) closing control loops over relay flows.
//!
//! The multi-hop runtime's core claims, pinned here:
//!
//! 1. flow routing over a 2-hop line and a 2×3 grid is **byte-stable**
//!    (golden physical flow lists, including forwarding jobs),
//! 2. the `sensor—relay—gateway—controller—actuator` line regulates the
//!    plant with zero steady-state error, and fails over through its
//!    relay hops when the primary misbehaves,
//! 3. losing the relay starves the loop but is **not** mistaken for a
//!    controller fault (no spurious failover, no fail-safe),
//! 4. a clustered 2-VC deployment's spatially-reused schedule is strictly
//!    shorter than its serialized equivalent while producing
//!    byte-identical plant traces,
//! 5. the sweep pipeline stays thread-count-independent over the
//!    `over_topology` axis.

use evm::core::runtime::{
    route_flows, synth_flows, Engine, FlowKind, Layout, RelayJob, Scenario, ScenarioBuilder,
    TopologySpec, GRID_SPACING_M, LINE_SPACING_M,
};
use evm::netsim::{Channel, ChannelConfig, NodeId};
use evm::plant::ActuatorFault;
use evm::prelude::*;
use evm::sim::SimRng;
use evm::sweep::{available_threads, run_cells, StarShape, SweepGrid, SweepReport};

type FlowTuple = (u16, u16, Vec<u16>, FlowKind, Option<usize>);

fn routed_tuples(spec: &TopologySpec) -> (Vec<FlowTuple>, Vec<(u16, Vec<RelayJob>)>) {
    let mut ch = Channel::new(ChannelConfig::default(), SimRng::seed_from(1));
    let (topo, map) = spec.resolve(&mut ch);
    let routed = route_flows(&topo, &synth_flows(&map)).expect("routable");
    let flows = routed
        .flows
        .iter()
        .map(|(f, k)| {
            (
                f.src.raw(),
                f.dst.raw(),
                f.extra_listeners.iter().map(|n| n.raw()).collect(),
                *k,
                f.after,
            )
        })
        .collect();
    let jobs = routed
        .jobs
        .into_iter()
        .map(|(id, js)| (id.raw(), js))
        .collect();
    (flows, jobs)
}

fn job(upstream: u16, origin: u16, kind: FlowKind) -> RelayJob {
    RelayJob {
        upstream: NodeId(upstream),
        origin: NodeId(origin),
        kind,
    }
}

/// Golden routed flow list for the 2-hop line
/// (`S1—R1—GW—Ctrl-A—A1`, ids GW=0, S1=1, Ctrl-A=2, A1=3, R1=4): the
/// four logical flows expand into exactly eight physical hops, strictly
/// after-chained, with forwarding jobs on R1 (both directions), the
/// gateway (publish toward the pod) and Ctrl-A (actuation forward back).
#[test]
fn golden_routed_flows_for_the_two_hop_line() {
    let spec = TopologySpec::line(2, 1, 1, 1, false, LINE_SPACING_M);
    let (flows, jobs) = routed_tuples(&spec);
    let dl = FlowKind::HilDownlink { vc: 0, tag: 0 };
    let pb = FlowKind::SensorPublish { vc: 0, tag: 0 };
    let out = FlowKind::ControlPublish { vc: 0 };
    let fwd = FlowKind::ActuateForward { vc: 0 };
    let relay = |job: u8| FlowKind::Relay { vc: 0, job };
    let expected: Vec<FlowTuple> = vec![
        // HIL downlink: GW -> R1 -> S1.
        (0, 4, vec![], dl, None),
        (4, 1, vec![], relay(0), Some(0)),
        // PV publish: S1 -> R1 -> GW -> Ctrl-A.
        (1, 4, vec![], pb, Some(1)),
        (4, 0, vec![], relay(1), Some(2)),
        (0, 2, vec![], relay(0), Some(3)),
        // Controller output: one hop to the actuator.
        (2, 3, vec![], out, Some(4)),
        // Actuation forward: A1 -> Ctrl-A -> GW.
        (3, 2, vec![], fwd, Some(5)),
        (2, 0, vec![], relay(0), Some(6)),
    ];
    assert_eq!(flows, expected);
    assert_eq!(
        jobs,
        vec![
            (0, vec![job(4, 1, pb)]),
            (2, vec![job(3, 3, fwd)]),
            (4, vec![job(0, 0, dl), job(1, 1, pb)]),
        ]
    );
}

/// Golden routed flow list for the 2×3 grid (ids GW=0, S1=1, Ctrl-A=2,
/// Ctrl-B=3, A1=4, R1=5; gateway and sensor in opposite corners).
/// Routes run through whatever node is closest — here the role nodes
/// themselves forward (the dedicated relay R1 sits off the chosen
/// shortest paths), and Ctrl-B, unreachable from Ctrl-A in one hop,
/// receives the primary's output through a forwarding hop on A1: the
/// multicast-chain extension that keeps deviation detection alive on
/// sparse topologies.
#[test]
fn golden_routed_flows_for_the_two_by_three_grid() {
    let spec = TopologySpec::grid(2, 3, 1, 2, 1, false, GRID_SPACING_M);
    let (flows, jobs) = routed_tuples(&spec);
    let dl = FlowKind::HilDownlink { vc: 0, tag: 0 };
    let pb = FlowKind::SensorPublish { vc: 0, tag: 0 };
    let out = FlowKind::ControlPublish { vc: 0 };
    let fwd = FlowKind::ActuateForward { vc: 0 };
    let relay = |job: u8| FlowKind::Relay { vc: 0, job };
    let expected: Vec<FlowTuple> = vec![
        // HIL downlink: GW -> Ctrl-A -> A1 -> S1.
        (0, 2, vec![], dl, None),
        (2, 4, vec![], relay(0), Some(0)),
        (4, 1, vec![], relay(0), Some(1)),
        // PV publish: S1 -> A1 -> Ctrl-A, the backup attached to the
        // A1 hop (it can hear A1 but not S1).
        (1, 4, vec![], pb, Some(2)),
        (4, 2, vec![3], relay(1), Some(3)),
        // Primary output: to the actuator, then forwarded on to Ctrl-B.
        (2, 4, vec![], out, Some(4)),
        (4, 3, vec![], relay(2), Some(5)),
        // Backup output: one hop to the actuator.
        (3, 4, vec![], out, Some(6)),
        // Actuation forward: A1 -> Ctrl-A -> GW.
        (4, 2, vec![], fwd, Some(7)),
        (2, 0, vec![], relay(1), Some(8)),
    ];
    assert_eq!(flows, expected);
    assert_eq!(
        jobs,
        vec![
            (2, vec![job(0, 0, dl), job(4, 4, fwd)]),
            (4, vec![job(2, 0, dl), job(1, 1, pb), job(2, 2, out)]),
        ]
    );
}

fn line_scenario() -> ScenarioBuilder {
    ScenarioBuilder::star()
        .line(2)
        .sensors(1)
        .controllers(2)
        .actuators(1)
        .head(true)
}

/// The acceptance chain: a 2-hop line
/// (sensor—relay—gateway—controller—actuator) closes the LTS loop
/// through store-and-forward hops and holds the setpoint with zero
/// steady-state error, full actuation rate and no deadline misses.
#[test]
fn two_hop_line_regulates_with_zero_steady_state_error() {
    let s = line_scenario()
        .duration(SimDuration::from_secs(600))
        .build();
    let engine = Engine::new(s);
    // The multi-hop is real: sensor and gateway are out of radio range.
    assert!(!engine.topology().are_neighbors(NodeId(0), NodeId(1)));
    assert_eq!(engine.topology().hops(NodeId(0), NodeId(1)), Some(2));
    assert!(engine.schedule().is_interference_free(engine.topology()));
    assert!(engine.schedule().max_slot().unwrap() < 25);

    let r = engine.run();
    assert_eq!(r.actuations, 2400, "one actuation per 250 ms cycle");
    assert_eq!(r.deadline_misses, 0);
    let err = r.series("Err.LC-LTS").last_value().unwrap();
    assert_eq!(err, 0.0, "steady-state error must be exactly zero");
    let pv = r.series("LTS.LiquidPct").last_value().unwrap();
    assert_eq!(pv, 50.0);
}

/// The paper's controller fault on the line's primary: deviation
/// detection, the head's alert plane and the reconfiguration broadcast
/// all work across relayed flows, and the plant recovers to its
/// setpoint under the promoted backup.
#[test]
fn line_failover_crosses_relay_hops() {
    let s = line_scenario()
        .fault_at(SimTime::from_secs(60), ActuatorFault::paper_fault())
        .reconfig_epoch(SimDuration::ZERO)
        .duration(SimDuration::from_secs(400))
        .build();
    let r = Engine::new(s).run();
    let detected = r.event_time("confirmed deviation").expect("detection");
    let promoted = r.event_time("Ctrl-B -> Active").expect("failover");
    assert!(
        detected > SimTime::from_secs(60) && detected < SimTime::from_secs(61),
        "deviation confirmed at {detected}"
    );
    assert!(
        promoted < SimTime::from_secs(61),
        "failover committed at {promoted}"
    );
    // The promoted backup regulates the plant back to the setpoint.
    let pv = r.series("LTS.LiquidPct").last_value().unwrap();
    assert!((pv - 50.0).abs() < 0.2, "recovered PV {pv}");
    assert!(r.event_time("fail-safe").is_none());
}

/// Relay loss starves the loop without spurious failover: the PV stream
/// dies with R1, actuations freeze at the pre-crash count, but the
/// starved primary's keepalives keep the heartbeat monitors quiet — a
/// dead relay must not be diagnosed as a controller fault.
#[test]
fn relay_loss_starves_the_loop_without_spurious_failover() {
    // R1 is the last node of the line spec (GW, S1, Ctrl-A, Ctrl-B, A1,
    // Head, R1).
    let crash = line_scenario()
        .crash_node_at(NodeId(6), SimTime::from_secs(10))
        .duration(SimDuration::from_secs(300))
        .build();
    assert_eq!(crash.topology.nodes[6].label, "R1");
    let r = Engine::new(crash).run();
    let baseline = Engine::new(
        line_scenario()
            .duration(SimDuration::from_secs(300))
            .build(),
    )
    .run();

    // 4 actuations per second until the crash, then silence.
    assert_eq!(r.actuations, 40, "actuations freeze with the relay");
    assert_eq!(baseline.actuations, 1200);
    // ...but no failover machinery fires: keepalives still flow.
    let trace = r.trace.render();
    assert!(!trace.contains("-> Active"), "no spurious promotion");
    assert!(!trace.contains("heartbeat timeout"));
    assert!(!trace.contains("fail-safe"));
}

/// The recovering twin of the starvation pin above: same crash, but the
/// topology carries a backup relay chain and the scenario opts into
/// `ReroutePolicy::Heartbeat`. The dead forwarder is detected by missed
/// relay heartbeats, routes re-run over the survivors, and delivery
/// resumes within a bounded number of cycles — while the static policy
/// on the *same* redundant topology still starves, isolating the reroute
/// policy as the only variable.
#[test]
fn relay_loss_recovers_under_heartbeat_reroute_policy() {
    use evm::core::runtime::ReroutePolicy;
    // R1 = node 6, RB1 = node 7 with one backup chain.
    let build = |policy: ReroutePolicy| {
        line_scenario()
            .backup_relays(1)
            .reroute(policy)
            .crash_node_at(NodeId(6), SimTime::from_secs(10))
            .duration(SimDuration::from_secs(300))
            .build()
    };
    let s = build(ReroutePolicy::Heartbeat);
    assert_eq!(s.topology.nodes[6].label, "R1");
    assert_eq!(s.topology.nodes[7].label, "RB1");
    let cycle = s.rtlink.cycle_duration();
    let bound = cycle * (s.heartbeat_cycles + 5);

    let rerouted = Engine::new(s).run();
    let starved = Engine::new(build(ReroutePolicy::Static)).run();

    // Static on the redundant topology: frozen at the pre-crash count.
    assert_eq!(starved.actuations, 40);
    assert_eq!(starved.epochs, 0);
    // Heartbeat: detection + one recomputed epoch, bounded recovery.
    assert_eq!(rerouted.epochs, 1);
    let down = rerouted.event_time("R1 missed heartbeats").expect("detect");
    assert!(
        down.saturating_since(SimTime::from_secs(10)) <= bound,
        "detection at {down}"
    );
    let reroute = rerouted.reroute_latency.expect("delivery resumed");
    assert!(reroute <= cycle * 3, "recovery {reroute} after detection");
    // The loop re-regulates through RB1 for the rest of the horizon.
    assert!(rerouted.actuations > 1000, "{}", rerouted.actuations);
    let err = rerouted.series("Err.LC-LTS").last_value().unwrap();
    assert!(err.abs() < 0.2, "steady-state error {err}");
    // Still no spurious failover: a dead relay is a routing problem, not
    // a controller fault.
    let trace = rerouted.trace.render();
    assert!(!trace.contains("-> Active"), "no spurious promotion");
    assert!(!trace.contains("fail-safe"));
}

fn clustered_scenario(serial: bool) -> Scenario {
    let mut s = ScenarioBuilder::star()
        .clustered(2)
        .sensors(1)
        .controllers(2)
        .actuators(1)
        .head(true)
        .slots_per_cycle(33)
        .serial_schedule(serial)
        .duration(SimDuration::from_secs(300))
        .build();
    // One plant step per RT-Link cycle: intra-cycle slot positions are
    // invisible to the plant, which is what makes the reused and
    // serialized schedules byte-comparable.
    s.plant_dt = s.rtlink.cycle_duration();
    s
}

/// The spatial-reuse acceptance pin: a clustered 2-VC deployment's
/// schedule reuses intra-cluster slots across clusters (strictly fewer
/// slots than the serialized equivalent) while both runs produce
/// byte-identical plant traces — slot packing changes the radio
/// timetable, never the physics.
#[test]
fn clustered_spatial_reuse_beats_serialized_with_identical_plant_traces() {
    let reuse = Engine::new(clustered_scenario(false));
    let serial = Engine::new(clustered_scenario(true));
    let reuse_slots = reuse.schedule().max_slot().unwrap();
    let serial_slots = serial.schedule().max_slot().unwrap();
    assert!(reuse.schedule().is_interference_free(reuse.topology()));
    assert!(
        reuse_slots < serial_slots,
        "spatial reuse must shorten the cycle: {reuse_slots} !< {serial_slots}"
    );
    // Pinned: 26 physical flows serialize to 26 slots; reuse packs the
    // two clusters' chains into 16.
    assert_eq!(serial_slots, 26);
    assert_eq!(reuse_slots, 16);

    let r_reuse = reuse.run();
    let r_serial = serial.run();
    for tag in [
        "LTS.LiquidPct",
        "InletSep.LevelPct",
        "Err.LC-LTS",
        "Err.LC-InletSep",
    ] {
        assert_eq!(
            r_reuse.series(tag).samples(),
            r_serial.series(tag).samples(),
            "{tag} must be byte-identical across schedule placements"
        );
    }
    assert_eq!(r_reuse.actuations, r_serial.actuations);
    // Both hosted loops actually regulate over their 3-hop relay chains.
    for vs in &r_reuse.vc_stats {
        assert!(vs.actuations > 400, "{} starved", vs.loop_name);
    }
}

/// Failover still works three hops out: crash a clustered VC's primary
/// and the head's reconfiguration (relayed along the cluster chain where
/// needed) promotes the backup.
#[test]
fn clustered_failover_crosses_the_relay_chain() {
    let s = ScenarioBuilder::star()
        .clustered(1)
        .sensors(1)
        .controllers(2)
        .actuators(1)
        .head(true)
        .slots_per_cycle(33)
        .crash_vc_primary_at(0, SimTime::from_secs(60))
        .reconfig_epoch(SimDuration::ZERO)
        .duration(SimDuration::from_secs(200))
        .build();
    let r = Engine::new(s).run();
    let promoted = r.event_time("Ctrl-B -> Active").expect("failover");
    assert!(
        promoted > SimTime::from_secs(60) && promoted < SimTime::from_secs(70),
        "failover at {promoted}"
    );
    let pv = r.series("LTS.LiquidPct").last_value().unwrap();
    assert!((pv - 50.0).abs() < 0.5, "PV after failover {pv}");
}

/// `tests/sweep_determinism.rs`-style cross-thread byte identity over
/// the `over_topology` axis: expansion, execution, aggregation and every
/// rendered report (including the topology CSV) are identical at 1 and
/// N threads.
#[test]
fn over_topology_sweep_is_byte_identical_across_thread_counts() {
    let template = Scenario::builder()
        .fault_at(SimTime::from_secs(8), ActuatorFault::paper_fault())
        .reconfig_epoch(SimDuration::ZERO)
        .duration(SimDuration::from_secs(30))
        .build();
    let grid = SweepGrid::new(template)
        .over_topology(&[
            Layout::Star,
            Layout::Line { hops: 2 },
            Layout::Grid { w: 2, h: 3 },
            Layout::Clustered,
        ])
        .over_stars(&[StarShape {
            sensors: 1,
            controllers: 2,
            actuators: 1,
            head: true,
        }])
        .seeds_per_cell(2)
        .base_seed(77);
    let cells = grid.expand();
    assert_eq!(cells.len(), 8);
    // Multi-hop cells really are multi-hop (relay kinds scheduled).
    assert!(cells[2]
        .scenario
        .topology
        .nodes
        .iter()
        .any(|n| n.label == "R1"));

    let n = available_threads().max(4);
    let serial = run_cells(&cells, 1);
    let parallel = run_cells(&cells, n);
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(a, b, "cell {i} differs between 1 and {n} threads");
    }
    let report_1 = SweepReport::build(&cells, &serial);
    let report_n = SweepReport::build(&cells, &parallel);
    assert_eq!(report_1.to_csv(), report_n.to_csv());
    assert_eq!(report_1.cells_csv(), report_n.cells_csv());
    assert_eq!(report_1.vcs_csv(), report_n.vcs_csv());
    assert_eq!(report_1.topology_csv(), report_n.topology_csv());
    assert_eq!(report_1.to_markdown(), report_n.to_markdown());
    // One topology row per config point, labeled by layout family.
    let topo_csv = report_1.topology_csv();
    assert_eq!(topo_csv.lines().count(), 1 + 4);
    assert!(topo_csv.contains(",star,"));
    assert!(topo_csv.contains(",line2,"));
    assert!(topo_csv.contains(",grid2x3,"));
    assert!(topo_csv.contains(",clustered,"));
}
