//! Cross-crate integration: live capsule migration over the
//! reconfiguration plane.
//!
//! Pins the tentpole claims of the migration PR:
//!
//! 1. **Attested arrival** — a head re-election under
//!    `ReroutePolicy::Heartbeat` ships the primary's capsule image over
//!    scheduled transfer slots; the new host attests the digest, checks
//!    version monotonicity and capabilities, and resumes the interpreter
//!    from the transferred variable state.
//! 2. **Retransmission** — a corrupted chunk is dropped unacked by the
//!    receiver and retransmitted by the stop-and-wait sender; the
//!    migration still completes, with `frames_sent > frames`.
//! 3. **Tamper rejection** — a capsule whose gas budget was inflated
//!    after digest computation is rejected at attestation and never
//!    activates.
//! 4. **Default-off** — with `transfer_slots = 0` (the default) nothing
//!    migrates and every physical observable is byte-identical to the
//!    pre-migration engine.

use evm::core::runtime::{Engine, ReroutePolicy, Scenario, ScenarioBuilder};
use evm::netsim::NodeId;
use evm::prelude::*;

/// Head-kill scenario: GW=0, S1=1, Ctrl-A=2, Ctrl-B=3, Ctrl-C=4, A1=5,
/// Head=6, R1=7, RB1=8. Killing the head under Heartbeat re-elects
/// Ctrl-B, which triggers the capsule transfer Ctrl-A -> Ctrl-B.
fn head_kill() -> ScenarioBuilder {
    ScenarioBuilder::star()
        .line(2)
        .sensors(1)
        .controllers(3)
        .actuators(1)
        .head(true)
        .backup_relays(1)
        .reroute(ReroutePolicy::Heartbeat)
        .crash_node_at(NodeId(6), SimTime::from_secs(30))
        .reconfig_epoch(SimDuration::ZERO)
        .duration(SimDuration::from_secs(120))
}

#[test]
fn head_reelection_migrates_the_capsule_and_attests_on_arrival() {
    let s = head_kill().transfer_slots(2).build();
    assert_eq!(s.topology.nodes[6].label, "Head");
    let r = Engine::new(s).run();

    // The re-election happened and triggered exactly one migration.
    r.event_time("re-elected head").expect("re-election");
    let started = r.event_time("transfer started").expect("transfer starts");
    let activated = r
        .event_time("attested and activated")
        .expect("attested arrival");
    assert!(activated > started);
    assert_eq!(r.migrations.len(), 1, "exactly one migration record");

    let m = &r.migrations[0];
    assert_eq!(m.vc, 0);
    assert_eq!(m.from, NodeId(2), "shipped from the primary (Ctrl-A)");
    assert_eq!(m.to, NodeId(3), "to the re-elected head (Ctrl-B)");
    assert!(m.image_bytes > 0);
    assert!(m.frames >= 1);
    assert_eq!(
        m.frames_sent, m.frames,
        "lossless default: no retransmissions"
    );
    assert_eq!(m.retries, 0);
    assert!(m.latency > SimDuration::ZERO);
    // Stop-and-wait over n transfer slots per cycle: each frame takes at
    // most one cycle, so latency is bounded by frames x cycle.
    let cycle = Scenario::baseline().rtlink.cycle_duration();
    assert!(
        m.latency <= cycle * m.frames as u64,
        "latency {} exceeds {} frames x cycle",
        m.latency,
        m.frames
    );
}

#[test]
fn corrupted_chunk_is_retransmitted_and_migration_still_completes() {
    let s = head_kill()
        .transfer_slots(2)
        .corrupt_transfer_chunk(1)
        .build();
    let r = Engine::new(s).run();

    r.event_time("corrupted in flight")
        .expect("corruption traced");
    r.event_time("attested and activated")
        .expect("migration completes despite the corrupted chunk");
    assert_eq!(r.migrations.len(), 1);
    let m = &r.migrations[0];
    assert!(
        m.frames_sent > m.frames,
        "the dropped chunk was retransmitted ({} sent, {} needed)",
        m.frames_sent,
        m.frames
    );
    assert!(m.retries >= 1);
}

#[test]
fn tampered_gas_budget_is_rejected_at_attestation() {
    let s = head_kill().transfer_slots(2).tamper_gas_budget().build();
    let r = Engine::new(s).run();

    r.event_time("transfer started").expect("transfer starts");
    r.event_time("rejected capsule")
        .expect("attestation rejects");
    assert!(
        r.event_time("attested and activated").is_none(),
        "a tampered capsule must never activate"
    );
    assert!(r.migrations.is_empty(), "no migration record on rejection");
}

#[test]
fn migrated_state_continuity_preserves_regulation() {
    // The capsule arrives with the primary's integrator snapshot; the
    // loop keeps regulating to setpoint after the transfer.
    let s = head_kill()
        .transfer_slots(2)
        .duration(SimDuration::from_secs(300))
        .build();
    let r = Engine::new(s).run();
    r.event_time("attested and activated").expect("migration");
    let pv = r.series("LTS.LiquidPct").last_value().unwrap();
    assert!((pv - 50.0).abs() < 0.5, "PV {pv} regulated after migration");
}

#[test]
fn default_transfer_budget_disables_migration_entirely() {
    // Same head-kill, default transfer_slots = 0: the re-election still
    // happens but no capsule ships, and the run is byte-identical to the
    // engine without the migration plane.
    let r = Engine::new(head_kill().build()).run();
    r.event_time("re-elected head").expect("re-election");
    assert!(r.event_time("transfer started").is_none());
    assert!(r.migrations.is_empty());
}

#[test]
fn transfer_slots_off_is_byte_identical_under_failures() {
    // transfer_slots only *adds* slots after the pipeline; with the lane
    // enabled but no failure, nothing ships and physics are unchanged.
    let base = ScenarioBuilder::star()
        .line(2)
        .sensors(1)
        .controllers(2)
        .actuators(1)
        .head(true)
        .backup_relays(1)
        .reroute(ReroutePolicy::Heartbeat)
        .duration(SimDuration::from_secs(120));
    let plain = Engine::new(base.clone().build()).run();
    let laned = Engine::new(base.transfer_slots(2).build()).run();
    assert_eq!(laned.series, plain.series);
    assert_eq!(laned.actuations, plain.actuations);
    assert!(laned.migrations.is_empty());
}

#[test]
fn scenario_defaults_keep_migration_off() {
    let s = Scenario::baseline();
    assert_eq!(s.transfer_slots, 0);
    assert_eq!(s.capsule_pad_bytes, 0);
    assert_eq!(s.migration_max_retries, 8);
    assert_eq!(s.corrupt_transfer_chunk, None);
    assert!(!s.tamper_gas_budget);
}
