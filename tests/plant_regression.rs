//! Cross-crate integration: plant physics regression.
//!
//! Pins the calibrated operating point of the gas plant so that model
//! changes that would silently alter the Fig. 6b preconditions fail CI.

use evm::plant::thermo::flash;
use evm::plant::{standard_loops, Component, Composition, GasPlant, LocalController, Plant};

#[test]
fn operating_point_is_pinned() {
    let plant = GasPlant::default();
    // The paper's nominal valve position.
    assert!((plant.lts_valve_pct() - 11.48).abs() < 1e-6);
    // Vessel starts at its 50 % setpoint.
    assert!((plant.lts_level_pct() - 50.0).abs() < 1.0);
    // Feed splits: inlet separator drops a small free-liquid stream.
    let sep = plant.read_tag("SepLiq.MolarFlow").unwrap();
    assert!(sep > 5.0 && sep < 60.0, "SepLiq {sep}");
    // LTS condenses a substantial NGL stream at -20 C.
    let lts = plant.read_tag("LTSLiq.MolarFlow").unwrap();
    assert!(lts > 100.0 && lts < 400.0, "LTSLiq {lts}");
}

#[test]
fn closed_loop_half_hour_is_stable_everywhere() {
    let mut plant = GasPlant::default();
    let mut loops: Vec<LocalController> = standard_loops()
        .into_iter()
        .map(LocalController::new)
        .collect();
    let dt = 0.25;
    let mut t = 0.0;
    for _ in 0..(1800.0 / dt) as usize {
        for c in &mut loops {
            let _ = c.poll(&mut plant, t);
        }
        plant.step(dt);
        t += dt;
    }
    let read = |tag: &str| plant.read_tag(tag).unwrap();
    assert!((read("LTS.LiquidPct") - 50.0).abs() < 3.0);
    assert!((read("InletSep.LevelPct") - 50.0).abs() < 3.0);
    assert!((read("Chiller.OutletTempK") - 253.15).abs() < 2.0);
    assert!((read("Column.SumpLevelPct") - 50.0).abs() < 5.0);
    assert!((read("Column.DrumLevelPct") - 50.0).abs() < 5.0);
    assert!((read("Column.PressureKPa") - 1400.0).abs() < 100.0);
}

#[test]
fn thermo_matches_paper_narrative() {
    // "a raw natural gas stream containing N2, CO2, and C1 through n-C4 is
    // processed in a refrigeration system in order to remove the heavier
    // hydrocarbons" — cooling must preferentially condense C3+.
    let feed = Composition::raw_natural_gas();
    let warm = flash(&feed, 303.15, 6200.0);
    let cold = flash(&feed, 253.15, 6000.0);
    assert!(cold.vapor_fraction < warm.vapor_fraction);
    let c3_enrichment = cold.liquid.fraction(Component::C3) / feed.fraction(Component::C3);
    let c1_enrichment = cold.liquid.fraction(Component::C1) / feed.fraction(Component::C1);
    assert!(
        c3_enrichment > 2.0 * c1_enrichment,
        "the liquid must be an NGL cut, not just compressed feed"
    );
}

#[test]
fn fault_precondition_for_fig6b_holds() {
    // With the valve forced to the faulty 75 %, the vessel drains fast —
    // the "rapid drop of the liquid percent level" the paper describes.
    let mut plant = GasPlant::default();
    plant.write_tag("LTSLiqValve.Cmd", 75.0).unwrap();
    for _ in 0..3000 {
        plant.step(0.1); // 300 s
    }
    assert!(
        plant.lts_level_pct() < 10.0,
        "level {}",
        plant.lts_level_pct()
    );
}
